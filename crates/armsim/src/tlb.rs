//! Data TLB model — the paper's Section VI names TLB analysis as future
//! work ("we will analyze the TLB misses and improve our selection of
//! block sizes"); this module provides the machinery for that analysis.
//!
//! A fully associative, LRU data TLB of configurable capacity over 4 KB
//! pages (the SoC-class configuration). The extended experiment
//! `ext_tlb_study` replays the GEBP access pattern through it to show
//! how the blocking parameters determine the TLB working set.

/// TLB hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Translations requested.
    pub accesses: u64,
    /// Translations served from the TLB.
    pub hits: u64,
}

impl TlbStats {
    /// Misses (page walks).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss rate in `[0, 1]`.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

/// A fully associative, LRU data TLB.
#[derive(Clone, Debug)]
pub struct Tlb {
    capacity: usize,
    page_bits: u32,
    // (page number, last-use stamp)
    entries: Vec<(u64, u64)>,
    stamp: u64,
    stats: TlbStats,
}

impl Tlb {
    /// TLB with `capacity` entries over pages of `page_size` bytes
    /// (power of two).
    #[must_use]
    pub fn new(capacity: usize, page_size: usize) -> Self {
        assert!(capacity > 0);
        assert!(page_size.is_power_of_two());
        Tlb {
            capacity,
            page_bits: page_size.trailing_zeros(),
            entries: Vec::with_capacity(capacity),
            stamp: 0,
            stats: TlbStats::default(),
        }
    }

    /// The SoC-class default: 48 entries, 4 KB pages.
    #[must_use]
    pub fn xgene_dtlb() -> Self {
        Self::new(48, 4096)
    }

    /// Entry count.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        1usize << self.page_bits
    }

    /// Translate the page of `addr`; returns whether it hit. On a miss
    /// the translation is installed (evicting the LRU entry when full).
    pub fn access(&mut self, addr: u64) -> bool {
        self.stamp += 1;
        self.stats.accesses += 1;
        let page = addr >> self.page_bits;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == page) {
            e.1 = self.stamp;
            self.stats.hits += 1;
            return true;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.1)
                .map(|(i, _)| i)
                .expect("non-empty");
            self.entries.swap_remove(lru);
        }
        self.entries.push((page, self.stamp));
        false
    }

    /// Non-mutating residency probe.
    #[must_use]
    pub fn contains(&self, addr: u64) -> bool {
        let page = addr >> self.page_bits;
        self.entries.iter().any(|e| e.0 == page)
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    /// Zero counters, keep contents.
    pub fn reset_stats(&mut self) {
        self.stats = TlbStats::default();
    }

    /// Drop everything.
    pub fn flush(&mut self) {
        self.entries.clear();
        self.stats = TlbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut t = Tlb::new(4, 4096);
        assert!(!t.access(0x1234));
        assert!(t.access(0x1FFF), "same page");
        assert!(!t.access(0x2000), "next page");
        assert_eq!(t.stats().accesses, 3);
        assert_eq!(t.stats().hits, 1);
    }

    #[test]
    fn lru_eviction() {
        let mut t = Tlb::new(2, 4096);
        t.access(0x0000); // page 0
        t.access(0x1000); // page 1
        t.access(0x0000); // touch page 0 -> page 1 is LRU
        t.access(0x2000); // evicts page 1
        assert!(t.contains(0x0000));
        assert!(!t.contains(0x1000));
        assert!(t.contains(0x2000));
    }

    #[test]
    fn working_set_within_capacity_never_misses_twice() {
        let mut t = Tlb::new(8, 4096);
        for round in 0..3 {
            for p in 0..8u64 {
                let hit = t.access(p * 4096);
                assert_eq!(hit, round > 0, "round {round} page {p}");
            }
        }
        assert!((t.stats().miss_rate() - 8.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_beyond_capacity_thrashes() {
        let mut t = Tlb::new(8, 4096);
        // cyclic sweep over 16 pages with LRU: every access misses
        for _ in 0..4 {
            for p in 0..16u64 {
                t.access(p * 4096);
            }
        }
        assert_eq!(
            t.stats().hits,
            0,
            "LRU pathological for cyclic oversized sets"
        );
    }

    #[test]
    fn xgene_defaults() {
        let t = Tlb::xgene_dtlb();
        assert_eq!(t.capacity(), 48);
        assert_eq!(t.page_size(), 4096);
    }

    #[test]
    fn flush_and_reset() {
        let mut t = Tlb::new(2, 4096);
        t.access(0);
        t.reset_stats();
        assert_eq!(t.stats().accesses, 0);
        assert!(t.contains(0));
        t.flush();
        assert!(!t.contains(0));
    }
}
