//! One simulated core: functional execution of kernel IR + pipeline
//! timing + cache hierarchy, producing the counters the paper reads from
//! `perf` (cycles, flops, L1-dcache-loads, miss levels).

use crate::cache::AccessKind;
use crate::isa::Instr;
use crate::machine::{SimMachine, TraceReport};
use crate::mem::SimMemory;
use crate::pipeline::{Pipeline, PipelineConfig, PipelineStats};
use crate::regfile::RegFile;

/// Result of running an instruction stream.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunReport {
    /// Total cycles (issue-drained).
    pub cycles: u64,
    /// Pipeline counters.
    pub pipe: PipelineStats,
    /// Per-level demand-access counts and latency sum.
    pub mem: TraceReport,
}

impl RunReport {
    /// Fraction of FMA peak achieved (`flops / (cycles · 2 flops/cycle)`
    /// with the default 2-cycle FMA II).
    #[must_use]
    pub fn efficiency(&self, flops_per_cycle: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.pipe.flops as f64 / (self.cycles as f64 * flops_per_cycle)
        }
    }

    /// Gflops at `freq_ghz`.
    #[must_use]
    pub fn gflops(&self, freq_ghz: f64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.pipe.flops as f64 * freq_ghz / self.cycles as f64
        }
    }
}

/// A single simulated core with its own registers, simulated memory and
/// pipeline. The cache hierarchy is passed per run (it may be shared
/// between cores via [`SimMachine`]).
#[derive(Clone, Debug)]
pub struct CoreSim {
    /// Architectural registers.
    pub regs: RegFile,
    /// Simulated data memory.
    pub mem: SimMemory,
    core_id: usize,
    pipe_cfg: PipelineConfig,
}

impl CoreSim {
    /// Core `core_id` with `mem_bytes` of simulated memory.
    #[must_use]
    pub fn new(core_id: usize, mem_bytes: usize) -> Self {
        CoreSim {
            regs: RegFile::new(),
            mem: SimMemory::new(mem_bytes),
            core_id,
            pipe_cfg: PipelineConfig::default(),
        }
    }

    /// Replace the pipeline configuration.
    pub fn set_pipeline_config(&mut self, cfg: PipelineConfig) {
        self.pipe_cfg = cfg;
    }

    /// This core's id (selects its L1/module in the machine).
    #[must_use]
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// Execute `stream` against the shared cache `machine`: functional
    /// semantics + timing, every data access walking the hierarchy.
    pub fn run(&mut self, stream: &[Instr], machine: &mut SimMachine) -> RunReport {
        self.run_inner(stream, Some(machine), 0)
    }

    /// Execute `stream` assuming every load hits L1 with the given
    /// latency — the paper's Table IV micro-benchmark setting ("this
    /// micro-benchmark can always keep the data in the L1 cache").
    pub fn run_perfect_l1(&mut self, stream: &[Instr], l1_lat: u64) -> RunReport {
        self.run_inner(stream, None, l1_lat)
    }

    /// Execute `stream` with a deterministic L1-miss model: every
    /// `period`-th load takes `miss_lat` cycles instead of `l1_lat`.
    /// This stresses the kernel's latency tolerance the way the ~5-11%
    /// steady-state L1 miss rate of the real GEBP does (Table VII), and
    /// is what separates the rotated 8×6 kernel from its no-rotation
    /// variant (Figure 13): the rotated schedule leaves enough slack to
    /// absorb an L2-latency load, the unrotated one does not.
    pub fn run_with_periodic_miss(
        &mut self,
        stream: &[Instr],
        l1_lat: u64,
        miss_lat: u64,
        period: u64,
    ) -> RunReport {
        assert!(period > 0);
        let mut pipe = Pipeline::new(self.pipe_cfg);
        let mut mem_report = TraceReport::default();
        let mut load_no = 0u64;
        let mut pc = 0usize;
        let mut steps = 0u64;
        while pc < stream.len() {
            steps += 1;
            assert!(steps <= Self::MAX_STEPS, "instruction budget exhausted");
            let ins = &stream[pc];
            self.exec_functional(ins, &mut None);
            let mem_lat = if matches!(ins, Instr::LdrQ { .. } | Instr::LdrQOff { .. }) {
                load_no += 1;
                let lat = if load_no.is_multiple_of(period) {
                    miss_lat
                } else {
                    l1_lat
                };
                mem_report.accesses += 1;
                if lat == l1_lat {
                    mem_report.l1_hits += 1;
                } else {
                    mem_report.l2_hits += 1;
                }
                mem_report.total_latency += lat;
                Some(lat)
            } else {
                None
            };
            pipe.issue(ins, mem_lat);
            pc = self.next_pc(ins, pc);
        }
        RunReport {
            cycles: pipe.cycles(),
            pipe: *pipe.stats(),
            mem: mem_report,
        }
    }

    /// Upper bound on executed instructions per run — a loop that never
    /// terminates is a generator bug, not a simulation workload.
    const MAX_STEPS: u64 = 500_000_000;

    fn run_inner(
        &mut self,
        stream: &[Instr],
        mut machine: Option<&mut SimMachine>,
        fixed_lat: u64,
    ) -> RunReport {
        let mut pipe = Pipeline::new(self.pipe_cfg);
        let mut mem_report = TraceReport::default();
        let mut pc = 0usize;
        let mut steps = 0u64;
        while pc < stream.len() {
            steps += 1;
            assert!(steps <= Self::MAX_STEPS, "instruction budget exhausted");
            let ins = &stream[pc];
            let mut mem_lat = None;
            if let Some((addr, kind)) = self.exec_functional(ins, &mut machine) {
                let lat = self.demand(addr, kind, &mut machine, fixed_lat, &mut mem_report);
                if kind == AccessKind::Read {
                    mem_lat = Some(lat);
                }
            }
            pipe.issue(ins, mem_lat);
            pc = self.next_pc(ins, pc);
        }
        RunReport {
            cycles: pipe.cycles(),
            pipe: *pipe.stats(),
            mem: mem_report,
        }
    }

    /// Program-counter update: sequential except for taken branches.
    fn next_pc(&self, ins: &Instr, pc: usize) -> usize {
        if let Instr::CbnzX { xn, offset } = *ins {
            if self.regs.x(xn) != 0 {
                return (pc as i64 + offset) as usize;
            }
        }
        pc + 1
    }

    /// Functional execution of one instruction: updates registers and
    /// simulated memory, routes prefetches, and returns the demand data
    /// access (address, kind) if the instruction performs one.
    fn exec_functional(
        &mut self,
        ins: &Instr,
        machine: &mut Option<&mut SimMachine>,
    ) -> Option<(u64, AccessKind)> {
        match *ins {
            Instr::LdrQ { qd, base, post } => {
                let addr = self.regs.x(base);
                let v = self.mem.read_q(addr);
                self.regs.set_v(qd, v);
                self.regs.set_x(base, addr.wrapping_add_signed(post));
                Some((addr, AccessKind::Read))
            }
            Instr::LdrQOff { qd, base, off } => {
                let addr = self.regs.x(base).wrapping_add_signed(off);
                let v = self.mem.read_q(addr);
                self.regs.set_v(qd, v);
                Some((addr, AccessKind::Read))
            }
            Instr::StrQ { qs, base, post } => {
                let addr = self.regs.x(base);
                self.mem.write_q(addr, self.regs.v(qs));
                self.regs.set_x(base, addr.wrapping_add_signed(post));
                Some((addr, AccessKind::Write))
            }
            Instr::StrQOff { qs, base, off } => {
                let addr = self.regs.x(base).wrapping_add_signed(off);
                self.mem.write_q(addr, self.regs.v(qs));
                Some((addr, AccessKind::Write))
            }
            Instr::Fmla { vd, vn, vm, lane } => {
                let n = self.regs.v(vn);
                let m = self.regs.v(vm);
                let mul = match lane {
                    Some(l) => [m[l as usize], m[l as usize]],
                    None => m,
                };
                let mut d = self.regs.v(vd);
                d[0] += n[0] * mul[0];
                d[1] += n[1] * mul[1];
                self.regs.set_v(vd, d);
                None
            }
            Instr::Fmul { vd, vn, vm, lane } => {
                let n = self.regs.v(vn);
                let m = self.regs.v(vm);
                let mul = match lane {
                    Some(l) => [m[l as usize], m[l as usize]],
                    None => m,
                };
                self.regs.set_v(vd, [n[0] * mul[0], n[1] * mul[1]]);
                None
            }
            Instr::MovIZero { vd } => {
                self.regs.set_v(vd, [0.0, 0.0]);
                None
            }
            Instr::Prfm { op, base, off } => {
                let addr = self.regs.x(base).wrapping_add_signed(off);
                if let Some(m) = machine.as_deref_mut() {
                    let _ = m.prefetch(self.core_id, addr, op);
                }
                None
            }
            Instr::MovX { xd, imm } => {
                self.regs.set_x(xd, imm);
                None
            }
            Instr::AddX { xd, xn, imm } => {
                let v = self.regs.x(xn).wrapping_add_signed(imm);
                self.regs.set_x(xd, v);
                None
            }
            // the branch target is applied by the PC logic in the driver
            Instr::CbnzX { .. } => None,
            Instr::Nop => None,
        }
    }

    fn demand(
        &mut self,
        addr: u64,
        kind: AccessKind,
        machine: &mut Option<&mut SimMachine>,
        fixed_lat: u64,
        report: &mut TraceReport,
    ) -> u64 {
        match machine.as_deref_mut() {
            Some(m) => {
                let (level, lat) = m.access(self.core_id, addr, kind);
                // book-keep levels locally too (machine stats aggregate
                // across runs)
                let mut one = TraceReport {
                    accesses: 1,
                    total_latency: lat,
                    ..TraceReport::default()
                };
                match level {
                    crate::hierarchy::HitLevel::L1 => one.l1_hits = 1,
                    crate::hierarchy::HitLevel::L2 => one.l2_hits = 1,
                    crate::hierarchy::HitLevel::L3 => one.l3_hits = 1,
                    crate::hierarchy::HitLevel::Mem => one.mem_accesses = 1,
                }
                report.merge(&one);
                lat
            }
            None => {
                report.accesses += 1;
                report.l1_hits += 1;
                report.total_latency += fixed_lat;
                fixed_lat
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, PrfOp};

    #[test]
    fn functional_load_fmla_store() {
        let mut core = CoreSim::new(0, 1 << 16);
        let a = core.mem.alloc(16, 16);
        let b = core.mem.alloc(16, 16);
        let c = core.mem.alloc(16, 16);
        core.mem.store_slice(a, &[2.0, 3.0]);
        core.mem.store_slice(b, &[10.0, 20.0]);
        let stream = vec![
            Instr::MovX { xd: 0, imm: a },
            Instr::MovX { xd: 1, imm: b },
            Instr::MovX { xd: 2, imm: c },
            Instr::MovIZero { vd: 8 },
            Instr::LdrQ {
                qd: 0,
                base: 0,
                post: 16,
            },
            Instr::LdrQ {
                qd: 1,
                base: 1,
                post: 16,
            },
            // v8.2d += v0.2d * v1.d[0] -> [2*10, 3*10]
            Instr::Fmla {
                vd: 8,
                vn: 0,
                vm: 1,
                lane: Some(0),
            },
            // v8.2d += v0.2d * v1.2d -> + [2*10, 3*20]
            Instr::Fmla {
                vd: 8,
                vn: 0,
                vm: 1,
                lane: None,
            },
            Instr::StrQ {
                qs: 8,
                base: 2,
                post: 0,
            },
        ];
        let mut machine = SimMachine::xgene();
        let report = core.run(&stream, &mut machine);
        assert_eq!(core.mem.read_q(c), [40.0, 90.0]);
        assert_eq!(report.pipe.flops, 8);
        assert_eq!(report.pipe.loads, 2);
        assert_eq!(report.pipe.stores, 1);
        assert!(report.cycles > 0);
    }

    #[test]
    fn post_increment_advances_pointer() {
        let mut core = CoreSim::new(0, 1 << 12);
        let a = core.mem.alloc(32, 16);
        core.mem.store_slice(a, &[1.0, 2.0, 3.0, 4.0]);
        let stream = vec![
            Instr::MovX { xd: 0, imm: a },
            Instr::LdrQ {
                qd: 0,
                base: 0,
                post: 16,
            },
            Instr::LdrQ {
                qd: 1,
                base: 0,
                post: 16,
            },
        ];
        let mut machine = SimMachine::xgene();
        core.run(&stream, &mut machine);
        assert_eq!(core.regs.v(0), [1.0, 2.0]);
        assert_eq!(core.regs.v(1), [3.0, 4.0]);
        assert_eq!(core.regs.x(0), a + 32);
    }

    #[test]
    fn perfect_l1_counts_all_hits() {
        let mut core = CoreSim::new(0, 1 << 12);
        let a = core.mem.alloc(1024, 64);
        let mut stream = vec![Instr::MovX { xd: 0, imm: a }];
        for _ in 0..32 {
            stream.push(Instr::LdrQ {
                qd: 0,
                base: 0,
                post: 16,
            });
        }
        let r = core.run_perfect_l1(&stream, 4);
        assert_eq!(r.mem.accesses, 32);
        assert_eq!(r.mem.l1_hits, 32);
        assert_eq!(r.mem.mem_accesses, 0);
    }

    #[test]
    fn machine_mode_sees_cold_misses_then_hits() {
        let mut core = CoreSim::new(0, 1 << 12);
        let a = core.mem.alloc(64, 64);
        let stream = vec![
            Instr::MovX { xd: 0, imm: a },
            Instr::LdrQ {
                qd: 0,
                base: 0,
                post: 16,
            },
            Instr::LdrQ {
                qd: 1,
                base: 0,
                post: 16,
            },
            Instr::LdrQ {
                qd: 2,
                base: 0,
                post: 16,
            },
            Instr::LdrQ {
                qd: 3,
                base: 0,
                post: 16,
            },
        ];
        let mut machine = SimMachine::xgene();
        let r = core.run(&stream, &mut machine);
        // one 64-byte line: first access cold, next three hit
        assert_eq!(r.mem.mem_accesses, 1);
        assert_eq!(r.mem.l1_hits, 3);
    }

    #[test]
    fn prefetch_then_load_hits_l1() {
        let mut core = CoreSim::new(0, 1 << 12);
        let a = core.mem.alloc(64, 64);
        let stream = vec![
            Instr::MovX { xd: 0, imm: a },
            Instr::Prfm {
                op: PrfOp::Pldl1Keep,
                base: 0,
                off: 0,
            },
            Instr::LdrQ {
                qd: 0,
                base: 0,
                post: 0,
            },
        ];
        let mut machine = SimMachine::xgene();
        let r = core.run(&stream, &mut machine);
        assert_eq!(r.mem.l1_hits, 1);
        assert_eq!(r.mem.mem_accesses, 0);
    }

    #[test]
    fn periodic_miss_model_terminates_and_charges_misses() {
        let mut core = CoreSim::new(0, 1 << 16);
        let a = core.mem.alloc(1024, 64);
        let mut stream = vec![Instr::MovX { xd: 14, imm: a }];
        for i in 0..27u8 {
            stream.push(Instr::LdrQOff {
                qd: 24 + (i % 8),
                base: 14,
                off: (i as i64 % 4) * 16,
            });
        }
        let r = core.run_with_periodic_miss(&stream, 4, 14, 9);
        assert_eq!(r.mem.accesses, 27);
        assert_eq!(r.mem.l2_hits, 3, "every 9th load misses");
        assert_eq!(r.mem.l1_hits, 24);
        // the three misses add latency over the all-hit run
        let mut core2 = CoreSim::new(0, 1 << 16);
        let hit_only = core2.run_perfect_l1(&stream, 4);
        assert!(r.mem.total_latency > hit_only.mem.total_latency);
    }

    #[test]
    fn periodic_miss_model_supports_branches() {
        // regression: the miss-model driver must advance the PC through
        // loops just like the main driver
        let mut core = CoreSim::new(0, 1 << 12);
        let a = core.mem.alloc(64, 64);
        let stream = vec![
            Instr::MovX { xd: 14, imm: a },
            Instr::MovX { xd: 16, imm: 4 },
            Instr::LdrQOff {
                qd: 24,
                base: 14,
                off: 0,
            },
            Instr::AddX {
                xd: 16,
                xn: 16,
                imm: -1,
            },
            Instr::CbnzX { xn: 16, offset: -2 },
        ];
        let r = core.run_with_periodic_miss(&stream, 4, 14, 2);
        assert_eq!(r.mem.accesses, 4, "four loop iterations, one load each");
        assert_eq!(r.mem.l2_hits, 2);
    }

    #[test]
    fn cbnz_loop_executes_correct_iteration_count() {
        let mut core = CoreSim::new(0, 1 << 16);
        let a = core.mem.alloc(64, 64);
        core.mem.store_slice(a, &[1.5, 2.5]);
        // x16 = 5; loop { v8 += v0 * v1; x16 -= 1 } while x16 != 0
        let stream = vec![
            Instr::MovX { xd: 0, imm: a },
            Instr::MovIZero { vd: 8 },
            Instr::LdrQ {
                qd: 0,
                base: 0,
                post: 0,
            },
            Instr::MovX { xd: 16, imm: 5 },
            // body start (index 4)
            Instr::Fmla {
                vd: 8,
                vn: 0,
                vm: 0,
                lane: Some(0),
            },
            Instr::AddX {
                xd: 16,
                xn: 16,
                imm: -1,
            },
            Instr::CbnzX { xn: 16, offset: -2 },
        ];
        let mut machine = SimMachine::xgene();
        let r = core.run(&stream, &mut machine);
        // five iterations: v8 = 5 * [1.5*1.5, 2.5*1.5]
        assert_eq!(core.regs.v(8), [5.0 * 1.5 * 1.5, 5.0 * 2.5 * 1.5]);
        assert_eq!(r.pipe.flops, 5 * 4);
        assert_eq!(core.regs.x(16), 0);
    }

    #[test]
    fn untaken_cbnz_falls_through() {
        let mut core = CoreSim::new(0, 1 << 12);
        let stream = vec![
            Instr::MovX { xd: 16, imm: 0 },
            Instr::CbnzX { xn: 16, offset: -1 },
            Instr::MovX { xd: 1, imm: 42 },
        ];
        let mut machine = SimMachine::xgene();
        core.run(&stream, &mut machine);
        assert_eq!(core.regs.x(1), 42);
    }

    #[test]
    fn efficiency_and_gflops_helpers() {
        let mut core = CoreSim::new(0, 1 << 12);
        let mut stream = Vec::new();
        for i in 0..240u64 {
            stream.push(Instr::Fmla {
                vd: (8 + (i % 24)) as u8,
                vn: 0,
                vm: 4,
                lane: Some(0),
            });
        }
        let r = core.run_perfect_l1(&stream, 4);
        let eff = r.efficiency(2.0);
        assert!(eff > 0.95, "pure FMA stream near peak, got {eff}");
        let gf = r.gflops(2.4);
        assert!((gf - 4.8 * eff).abs() < 0.1);
    }
}
