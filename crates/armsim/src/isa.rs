//! The A64 instruction subset used by the paper's GEBP kernels.
//!
//! This is typed IR, not encoded machine code: the kernel generator in the
//! `kernels` crate emits it, the functional interpreter executes it, and
//! the pipeline model times it. [`Instr::asm`] renders GNU-style assembly
//! text matching the paper's Figure 8 snippet.

use core::fmt;

/// A NEON vector register index, `v0`–`v31`.
pub type VReg = u8;

/// A general-purpose register index, `x0`–`x30`.
pub type XReg = u8;

/// Prefetch operation kinds (the two the paper uses, plus L3 for
/// completeness).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrfOp {
    /// `PLDL1KEEP` — prefetch for load into L1 (A-stream prefetch).
    Pldl1Keep,
    /// `PLDL2KEEP` — prefetch for load into L2 (B-stream prefetch).
    Pldl2Keep,
    /// `PLDL3KEEP` — prefetch for load into L3.
    Pldl3Keep,
}

/// One instruction of the kernel IR.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Instr {
    /// `ldr q<qd>, [x<base>], #<post>` — 128-bit load, post-indexed.
    LdrQ {
        /// Destination vector register.
        qd: VReg,
        /// Base address register.
        base: XReg,
        /// Post-increment in bytes (0 = no writeback).
        post: i64,
    },
    /// `ldr q<qd>, [x<base>, #<off>]` — 128-bit load, immediate offset.
    LdrQOff {
        /// Destination vector register.
        qd: VReg,
        /// Base address register.
        base: XReg,
        /// Byte offset.
        off: i64,
    },
    /// `str q<qs>, [x<base>], #<post>` — 128-bit store, post-indexed.
    StrQ {
        /// Source vector register.
        qs: VReg,
        /// Base address register.
        base: XReg,
        /// Post-increment in bytes.
        post: i64,
    },
    /// `str q<qs>, [x<base>, #<off>]` — 128-bit store, immediate offset.
    StrQOff {
        /// Source vector register.
        qs: VReg,
        /// Base address register.
        base: XReg,
        /// Byte offset.
        off: i64,
    },
    /// `fmla v<vd>.2d, v<vn>.2d, v<vm>.d[lane]` (lane form) or
    /// `fmla v<vd>.2d, v<vn>.2d, v<vm>.2d` (vector form):
    /// `vd[i] += vn[i] * (lane ? vm[lane] : vm[i])`. 4 flops.
    Fmla {
        /// Accumulator register.
        vd: VReg,
        /// First multiplicand.
        vn: VReg,
        /// Second multiplicand.
        vm: VReg,
        /// Broadcast lane of `vm`, or `None` for element-wise.
        lane: Option<u8>,
    },
    /// `fmul v<vd>.2d, v<vn>.2d, v<vm>.d[lane]` — like `Fmla` without
    /// accumulation.
    Fmul {
        /// Destination register.
        vd: VReg,
        /// First multiplicand.
        vn: VReg,
        /// Second multiplicand.
        vm: VReg,
        /// Broadcast lane of `vm`, or `None` for element-wise.
        lane: Option<u8>,
    },
    /// `movi v<vd>.2d, #0` — zero a vector register.
    MovIZero {
        /// Destination register.
        vd: VReg,
    },
    /// `prfm <op>, [x<base>, #<off>]` — software prefetch hint.
    Prfm {
        /// Prefetch kind.
        op: PrfOp,
        /// Base address register.
        base: XReg,
        /// Byte offset.
        off: i64,
    },
    /// `mov x<xd>, #<imm>` — load an immediate (used to set base
    /// pointers; the real kernels receive them as arguments).
    MovX {
        /// Destination register.
        xd: XReg,
        /// Immediate value (an address in the simulated memory).
        imm: u64,
    },
    /// `add x<xd>, x<xn>, #<imm>` — address arithmetic.
    AddX {
        /// Destination register.
        xd: XReg,
        /// Source register.
        xn: XReg,
        /// Immediate addend (may be negative).
        imm: i64,
    },
    /// `cbnz x<xn>, #<offset>` — branch by `offset` *instructions*
    /// (relative to this instruction) when the register is nonzero; the
    /// loop back-edge of the real kernels.
    CbnzX {
        /// Register tested.
        xn: XReg,
        /// Branch offset in instructions (negative = backwards).
        offset: i64,
    },
    /// `nop`.
    Nop,
}

impl Instr {
    /// GNU-assembler text for this instruction.
    #[must_use]
    pub fn asm(&self) -> String {
        match *self {
            Instr::LdrQ { qd, base, post } => {
                if post == 0 {
                    format!("ldr q{qd}, [x{base}]")
                } else {
                    format!("ldr q{qd}, [x{base}], #{post}")
                }
            }
            Instr::LdrQOff { qd, base, off } => format!("ldr q{qd}, [x{base}, #{off}]"),
            Instr::StrQ { qs, base, post } => {
                if post == 0 {
                    format!("str q{qs}, [x{base}]")
                } else {
                    format!("str q{qs}, [x{base}], #{post}")
                }
            }
            Instr::StrQOff { qs, base, off } => format!("str q{qs}, [x{base}, #{off}]"),
            Instr::Fmla { vd, vn, vm, lane } => match lane {
                Some(l) => format!("fmla v{vd}.2d, v{vn}.2d, v{vm}.d[{l}]"),
                None => format!("fmla v{vd}.2d, v{vn}.2d, v{vm}.2d"),
            },
            Instr::Fmul { vd, vn, vm, lane } => match lane {
                Some(l) => format!("fmul v{vd}.2d, v{vn}.2d, v{vm}.d[{l}]"),
                None => format!("fmul v{vd}.2d, v{vn}.2d, v{vm}.2d"),
            },
            Instr::MovIZero { vd } => format!("movi v{vd}.2d, #0"),
            Instr::Prfm { op, base, off } => {
                let opname = match op {
                    PrfOp::Pldl1Keep => "PLDL1KEEP",
                    PrfOp::Pldl2Keep => "PLDL2KEEP",
                    PrfOp::Pldl3Keep => "PLDL3KEEP",
                };
                format!("prfm {opname}, [x{base}, #{off}]")
            }
            Instr::MovX { xd, imm } => format!("mov x{xd}, #{imm}"),
            Instr::AddX { xd, xn, imm } => format!("add x{xd}, x{xn}, #{imm}"),
            Instr::CbnzX { xn, offset } => format!("cbnz x{xn}, #{offset}"),
            Instr::Nop => "nop".to_string(),
        }
    }

    /// Does this instruction access data memory (load/store)?
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::LdrQ { .. } | Instr::LdrQOff { .. } | Instr::StrQ { .. } | Instr::StrQOff { .. }
        )
    }

    /// Is this a floating-point arithmetic instruction?
    #[must_use]
    pub fn is_fp_arith(&self) -> bool {
        matches!(self, Instr::Fmla { .. } | Instr::Fmul { .. })
    }

    /// Double-precision flops performed (4 for a 2-lane FMA, 2 for a
    /// 2-lane multiply).
    #[must_use]
    pub fn flops(&self) -> u64 {
        match self {
            Instr::Fmla { .. } => 4,
            Instr::Fmul { .. } => 2,
            _ => 0,
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.asm())
    }
}

/// Render a whole instruction stream as assembly text.
#[must_use]
pub fn render_asm(stream: &[Instr]) -> String {
    let mut out = String::new();
    for ins in stream {
        out.push_str("    ");
        out.push_str(&ins.asm());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asm_matches_figure8_style() {
        // Paper Figure 8: "ldr q1,[x14],#16", "fmla v8.2d, v0.2d, v4.d[0]",
        // "prfm PLDL1KEEP, [x14,#PREFA]"
        assert_eq!(
            Instr::LdrQ {
                qd: 1,
                base: 14,
                post: 16
            }
            .asm(),
            "ldr q1, [x14], #16"
        );
        assert_eq!(
            Instr::Fmla {
                vd: 8,
                vn: 0,
                vm: 4,
                lane: Some(0)
            }
            .asm(),
            "fmla v8.2d, v0.2d, v4.d[0]"
        );
        assert_eq!(
            Instr::Prfm {
                op: PrfOp::Pldl1Keep,
                base: 14,
                off: 1024
            }
            .asm(),
            "prfm PLDL1KEEP, [x14, #1024]"
        );
    }

    #[test]
    fn classification() {
        let ld = Instr::LdrQ {
            qd: 0,
            base: 0,
            post: 16,
        };
        let fma = Instr::Fmla {
            vd: 8,
            vn: 0,
            vm: 4,
            lane: None,
        };
        assert!(ld.is_mem() && !ld.is_fp_arith());
        assert!(fma.is_fp_arith() && !fma.is_mem());
        assert_eq!(fma.flops(), 4);
        assert_eq!(ld.flops(), 0);
        assert_eq!(
            Instr::Fmul {
                vd: 1,
                vn: 2,
                vm: 3,
                lane: Some(1)
            }
            .flops(),
            2
        );
    }

    #[test]
    fn render_stream() {
        let text = render_asm(&[Instr::Nop, Instr::MovX { xd: 14, imm: 4096 }]);
        assert!(text.contains("nop\n"));
        assert!(text.contains("mov x14, #4096"));
    }
}
