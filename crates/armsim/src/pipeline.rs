//! In-order-issue timing model of one core.
//!
//! Calibrated to the paper's platform:
//!
//! - four-wide in-order dispatch (the X-Gene class core is a four-issue
//!   superscalar; out-of-order completion is approximated by scoreboarded
//!   in-order issue, which is accurate for the compiler/hand-scheduled
//!   straight-line kernels this model executes);
//! - **one NEON FMA pipe with a 2-cycle initiation interval** — one
//!   128-bit `fmla v.2d` (4 flops) every 2 cycles = 2 flops/cycle =
//!   4.8 Gflops at 2.4 GHz, exactly the paper's per-core peak;
//! - one load/store pipe (one 128-bit access per cycle);
//! - a vector load's write-back **steals one NEON issue cycle** (shared
//!   NEON register-file write port), charged when the NEON pipe is busy:
//!   a stream of F FMAs and L loads takes `2F + L` cycles when
//!   FMA-bound, reproducing the monotone efficiency-vs-`LDR:FMLA` curve
//!   of the paper's Table IV;
//! - register scoreboarding: an instruction waits for its source (and
//!   accumulator) registers, so under-scheduled loads stall the FMA pipe
//!   — the effect register rotation (eq. (12)) and load scheduling
//!   (eq. (13)) exist to avoid.
//!
//! WAR hazards are ignored, matching the paper's measurement that they do
//! not matter on this core ("due to possibly the register renaming
//! mechanism used", Section V-A).

use crate::isa::Instr;

/// Microarchitectural parameters.
#[derive(Clone, Copy, Debug)]
pub struct PipelineConfig {
    /// Max instructions issued per cycle.
    pub issue_width: u32,
    /// NEON FMA initiation interval (cycles between FMA issues).
    pub fma_ii: u64,
    /// NEON FMA result latency.
    pub fma_lat: u64,
    /// Load/store pipe initiation interval.
    pub ls_ii: u64,
    /// Scalar ALU result latency (address arithmetic).
    pub scalar_lat: u64,
    /// Vector-load write-backs steal a NEON issue cycle.
    pub load_wb_steals_neon: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            issue_width: 4,
            fma_ii: 2,
            fma_lat: 6,
            ls_ii: 1,
            scalar_lat: 1,
            load_wb_steals_neon: true,
        }
    }
}

/// Cycle accounting of a simulated stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Instructions issued.
    pub instrs: u64,
    /// Double-precision flops performed.
    pub flops: u64,
    /// Vector loads issued.
    pub loads: u64,
    /// Vector stores issued.
    pub stores: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Cycles lost waiting for source registers (RAW).
    pub raw_stall_cycles: u64,
    /// Cycles lost to unit contention (NEON II, LS pipe, write-back
    /// steals).
    pub struct_stall_cycles: u64,
}

/// The in-order issue engine. Feed instructions via [`Pipeline::issue`];
/// read total time via [`Pipeline::cycles`].
#[derive(Clone, Debug)]
pub struct Pipeline {
    cfg: PipelineConfig,
    v_ready: [u64; 32],
    x_ready: [u64; 31],
    neon_free: u64,
    ls_free: u64,
    last_issue: u64,
    issued_at_last: u32,
    stats: PipelineStats,
}

impl Pipeline {
    /// Fresh pipeline at cycle 0.
    #[must_use]
    pub fn new(cfg: PipelineConfig) -> Self {
        Pipeline {
            cfg,
            v_ready: [0; 32],
            x_ready: [0; 31],
            neon_free: 0,
            ls_free: 0,
            last_issue: 0,
            issued_at_last: 0,
            stats: PipelineStats::default(),
        }
    }

    /// Configuration in use.
    #[must_use]
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Issue one instruction. `mem_lat` must be provided for loads (the
    /// load-to-use latency determined by the cache hierarchy) and is
    /// ignored otherwise. Returns the issue cycle.
    pub fn issue(&mut self, ins: &Instr, mem_lat: Option<u64>) -> u64 {
        self.stats.instrs += 1;
        self.stats.flops += ins.flops();

        // in-order constraint (+ issue width at the current cycle)
        let mut t_inorder = self.last_issue;
        if self.issued_at_last >= self.cfg.issue_width {
            t_inorder += 1;
        }

        let (t_src, t_unit) = match *ins {
            Instr::Fmla { vd, vn, vm, .. } => (
                self.v_ready[vd as usize]
                    .max(self.v_ready[vn as usize])
                    .max(self.v_ready[vm as usize]),
                self.neon_free,
            ),
            Instr::Fmul { vn, vm, .. } => (
                self.v_ready[vn as usize].max(self.v_ready[vm as usize]),
                self.neon_free,
            ),
            Instr::LdrQ { base, .. } | Instr::LdrQOff { base, .. } => {
                (self.x_ready[base as usize], self.ls_free)
            }
            Instr::StrQ { qs, base, .. } | Instr::StrQOff { qs, base, .. } => (
                self.v_ready[qs as usize].max(self.x_ready[base as usize]),
                self.ls_free,
            ),
            Instr::Prfm { base, .. } => (self.x_ready[base as usize], self.ls_free),
            Instr::AddX { xn, .. } | Instr::CbnzX { xn, .. } => (self.x_ready[xn as usize], 0),
            Instr::MovX { .. } | Instr::MovIZero { .. } | Instr::Nop => (0, 0),
        };

        let t = t_inorder.max(t_src).max(t_unit);

        // stall attribution (vs the pure in-order schedule): cycles up to
        // the source-ready time are RAW, the rest structural
        if t > t_inorder {
            let raw = t_src.saturating_sub(t_inorder).min(t - t_inorder);
            self.stats.raw_stall_cycles += raw;
            self.stats.struct_stall_cycles += (t - t_inorder) - raw;
        }

        // book resources and results
        match *ins {
            Instr::Fmla { vd, .. } | Instr::Fmul { vd, .. } => {
                self.neon_free = t + self.cfg.fma_ii;
                self.v_ready[vd as usize] = t + self.cfg.fma_lat;
            }
            Instr::LdrQ { qd, base, post } => {
                self.ls_free = t + self.cfg.ls_ii;
                let lat = mem_lat.expect("loads need a memory latency");
                self.v_ready[qd as usize] = t + lat;
                if post != 0 {
                    self.x_ready[base as usize] = t + 1;
                }
                self.steal_neon_writeback_slot(t);
                self.stats.loads += 1;
            }
            Instr::LdrQOff { qd, .. } => {
                self.ls_free = t + self.cfg.ls_ii;
                let lat = mem_lat.expect("loads need a memory latency");
                self.v_ready[qd as usize] = t + lat;
                self.steal_neon_writeback_slot(t);
                self.stats.loads += 1;
            }
            Instr::StrQ { base, post, .. } => {
                self.ls_free = t + self.cfg.ls_ii;
                if post != 0 {
                    self.x_ready[base as usize] = t + 1;
                }
                self.stats.stores += 1;
            }
            Instr::StrQOff { .. } => {
                self.ls_free = t + self.cfg.ls_ii;
                self.stats.stores += 1;
            }
            Instr::Prfm { .. } => {
                self.ls_free = t + self.cfg.ls_ii;
                self.stats.prefetches += 1;
            }
            Instr::MovX { xd, .. } => {
                self.x_ready[xd as usize] = t + self.cfg.scalar_lat;
            }
            Instr::AddX { xd, .. } => {
                self.x_ready[xd as usize] = t + self.cfg.scalar_lat;
            }
            Instr::MovIZero { vd } => {
                self.v_ready[vd as usize] = t + self.cfg.scalar_lat;
            }
            // a correctly predicted loop back-edge costs no extra cycles
            Instr::CbnzX { .. } | Instr::Nop => {}
        }

        // advance the in-order pointer
        if t == self.last_issue {
            self.issued_at_last += 1;
        } else {
            self.last_issue = t;
            self.issued_at_last = 1;
        }
        t
    }

    /// A vector load's write-back consumes one cycle of the shared NEON
    /// register-file write port. When the NEON pipe is busy (back-logged
    /// past the load's issue cycle) this delays it by one cycle; an idle
    /// pipe absorbs the write-back for free.
    fn steal_neon_writeback_slot(&mut self, t: u64) {
        if self.cfg.load_wb_steals_neon && self.neon_free > t {
            self.neon_free += 1;
        }
    }

    /// Total busy cycles so far (issue drained; in-flight latencies of
    /// unread results are not charged).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.neon_free.max(self.ls_free).max(self.last_issue + 1)
    }

    /// Counters.
    #[must_use]
    pub fn stats(&self) -> &PipelineStats {
        &self.stats
    }

    /// Achieved fraction of the FMA-throughput peak so far:
    /// `flops / (cycles · flops_per_cycle)` where `flops_per_cycle =
    /// 4 / fma_ii` (one 2-lane FMA per II).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        let peak = 4.0 / self.cfg.fma_ii as f64;
        self.stats.flops as f64 / (self.cycles() as f64 * peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Instr, PrfOp};

    fn fmla(vd: u8, vn: u8, vm: u8) -> Instr {
        Instr::Fmla {
            vd,
            vn,
            vm,
            lane: None,
        }
    }

    fn ldr(qd: u8) -> Instr {
        Instr::LdrQ {
            qd,
            base: 14,
            post: 16,
        }
    }

    /// Accumulator register for the i-th FMA of an independent stream:
    /// cycles over v8..v23 so loads can target v24..v31 without RAW.
    fn acc(i: u64) -> u8 {
        (8 + (i % 16)) as u8
    }

    /// Load target for the i-th independent load: v24..v31.
    fn ldreg(i: u64) -> u8 {
        (24 + (i % 8)) as u8
    }

    #[test]
    fn pure_fma_stream_hits_peak() {
        // independent FMAs: one per II -> efficiency 1.0
        let mut p = Pipeline::new(PipelineConfig::default());
        for i in 0..1000u64 {
            let r = (8 + (i % 24)) as u8;
            p.issue(&fmla(r, 0, 4), None);
        }
        assert!(
            (p.efficiency() - 1.0).abs() < 0.01,
            "eff {}",
            p.efficiency()
        );
    }

    #[test]
    fn load_writebacks_steal_neon_cycles() {
        // 1:1 ldr:fmla, independent: ~3 cycles per pair -> eff ~2/3
        let mut p = Pipeline::new(PipelineConfig::default());
        for i in 0..2000u64 {
            p.issue(&fmla(acc(i), 0, 4), None);
            p.issue(&ldr(ldreg(i)), Some(4));
        }
        let eff = p.efficiency();
        assert!(
            (0.60..0.72).contains(&eff),
            "1:1 efficiency should be near 2/3, got {eff}"
        );
    }

    #[test]
    fn efficiency_monotone_in_fma_fraction() {
        // Table IV property: more FMAs per load -> higher efficiency.
        let ratios = [(1usize, 1usize), (2, 1), (3, 1), (4, 1), (5, 1)];
        let mut last = 0.0;
        for (f, l) in ratios {
            let mut p = Pipeline::new(PipelineConfig::default());
            for g in 0..500u64 {
                for i in 0..f {
                    p.issue(&fmla(acc(g * f as u64 + i as u64), 0, 4), None);
                }
                for i in 0..l {
                    p.issue(&ldr(ldreg(g * l as u64 + i as u64)), Some(4));
                }
            }
            let eff = p.efficiency();
            assert!(eff > last, "{f}:{l} gave {eff}, not above {last}");
            last = eff;
        }
        assert!(last > 0.85, "1:5 should be close to peak, got {last}");
    }

    #[test]
    fn raw_stall_on_unscheduled_load() {
        // load immediately feeding an FMA stalls it by ~the load latency
        let mut p = Pipeline::new(PipelineConfig::default());
        p.issue(&ldr(0), Some(4));
        let t = p.issue(&fmla(8, 0, 4), None);
        assert!(t >= 4, "fmla must wait for the load, issued at {t}");
        assert!(p.stats().raw_stall_cycles > 0);
    }

    #[test]
    fn scheduled_load_hides_latency() {
        // load 5 independent FMAs ahead of its use: no stall
        let mut p = Pipeline::new(PipelineConfig::default());
        p.issue(&ldr(0), Some(4));
        for i in 0..5 {
            p.issue(&fmla(8 + i, 1, 4), None);
        }
        let before = p.stats().raw_stall_cycles;
        p.issue(&fmla(20, 0, 4), None);
        assert_eq!(p.stats().raw_stall_cycles, before, "latency fully hidden");
    }

    #[test]
    fn fma_accumulator_dependency_respected() {
        // same vd back to back: second waits fma_lat, not just II
        let mut p = Pipeline::new(PipelineConfig::default());
        let t0 = p.issue(&fmla(8, 0, 4), None);
        let t1 = p.issue(&fmla(8, 1, 5), None);
        assert!(t1 >= t0 + p.config().fma_lat);
    }

    #[test]
    fn ls_pipe_serializes_loads() {
        let mut p = Pipeline::new(PipelineConfig::default());
        let t0 = p.issue(&ldr(0), Some(4));
        let t1 = p.issue(&ldr(1), Some(4));
        assert_eq!(t1, t0 + 1);
    }

    #[test]
    fn issue_width_bounds_per_cycle() {
        let mut p = Pipeline::new(PipelineConfig::default());
        // 6 scalar movs: at width 4, at most 4 share cycle 0
        let cycles: Vec<u64> = (0..6)
            .map(|i| p.issue(&Instr::MovX { xd: i, imm: 0 }, None))
            .collect();
        assert_eq!(cycles[3], 0);
        assert!(cycles[4] >= 1);
    }

    #[test]
    fn stores_and_prefetches_use_ls_pipe() {
        let mut p = Pipeline::new(PipelineConfig::default());
        let t0 = p.issue(
            &Instr::StrQ {
                qs: 8,
                base: 10,
                post: 16,
            },
            None,
        );
        let t1 = p.issue(
            &Instr::Prfm {
                op: PrfOp::Pldl1Keep,
                base: 14,
                off: 1024,
            },
            None,
        );
        assert_eq!(t1, t0 + 1);
        assert_eq!(p.stats().stores, 1);
        assert_eq!(p.stats().prefetches, 1);
    }

    #[test]
    fn post_increment_chains_address_register() {
        let mut p = Pipeline::new(PipelineConfig::default());
        let t0 = p.issue(&ldr(0), Some(4));
        let t1 = p.issue(&ldr(1), Some(4)); // same base x14
        assert_eq!(t1, t0 + 1, "AGU update forwards next cycle");
    }

    #[test]
    fn disabling_wb_steal_removes_structural_penalty() {
        let cfg = PipelineConfig {
            load_wb_steals_neon: false,
            ..PipelineConfig::default()
        };
        let mut p = Pipeline::new(cfg);
        for i in 0..2000u64 {
            p.issue(&fmla(acc(i), 0, 4), None);
            p.issue(&ldr(ldreg(i)), Some(4));
        }
        assert!(
            p.efficiency() > 0.95,
            "without the port steal 1:1 runs at peak: {}",
            p.efficiency()
        );
    }
}
