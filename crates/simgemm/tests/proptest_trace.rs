//! Property tests of the address-trace generator: for arbitrary block
//! shapes the traces must have closed-form volumes, stay inside their
//! regions, and be insensitive to cache state (generation is pure).

use armsim::machine::{SimMachine, TraceOp};
use perfmodel::cacheblock::BlockSizes;
use proptest::prelude::*;
use simgemm::trace::{trace_gebp, trace_pack_a, trace_pack_b, CoreLayout};

fn count_reads(t: &[TraceOp]) -> usize {
    t.iter().filter(|o| matches!(o, TraceOp::Read(_))).count()
}

fn count_writes(t: &[TraceOp]) -> usize {
    t.iter().filter(|o| matches!(o, TraceOp::Write(_))).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Packing traces move exactly the block's bytes: writes are the
    /// packed volume in lines, reads cover the source columns.
    #[test]
    fn pack_volumes_are_closed_form(
        mc in 1usize..120,
        kc in 1usize..160,
        nc in 1usize..120,
    ) {
        let blocks = BlockSizes::custom(8, 6, kc.max(1), mc.max(1), nc.max(1));
        let layout = CoreLayout::for_core(0, 512, &blocks);
        // per column, the packed write range may straddle one extra line
        // when its start is not line-aligned
        let ta = trace_pack_a(&layout, mc, kc, 0, 0);
        let wa = count_writes(&ta);
        let lo_a = kc * (mc * 8).div_ceil(64);
        prop_assert!((lo_a..=lo_a + kc).contains(&wa), "{wa} not in [{lo_a}, {}]", lo_a + kc);
        let tb = trace_pack_b(&layout, kc, nc, 0, 0);
        let wb = count_writes(&tb);
        let lo_b = nc * (kc * 8).div_ceil(64);
        prop_assert!((lo_b..=lo_b + nc).contains(&wb), "{wb} not in [{lo_b}, {}]", lo_b + nc);
        // both scale with the block volume
        prop_assert!(count_reads(&tb) >= nc * (kc * 8) / 64);
    }

    /// GEBP traces: the A-stream read count has a closed form; every
    /// address stays within the regions of the layout; C is written as
    /// often as it is read.
    #[test]
    fn gebp_trace_structure(
        mc_blocks in 1usize..6,
        kc in 8usize..120,
        nc_blocks in 1usize..6,
    ) {
        let (mr, nr) = (8usize, 6usize);
        let mc = mc_blocks * mr;
        let nc = nc_blocks * nr;
        let blocks = BlockSizes::custom(mr, nr, kc, mc, nc);
        let layout = CoreLayout::for_core(0, 1024, &blocks);
        let t = trace_gebp(&layout, &blocks, mc, kc, nc, 0, 0);

        // A reads: one line per k per A sliver per B sliver
        let a_region = layout.packed_a..layout.packed_a + (1 << 27);
        let a_reads = t.iter().filter(|o| matches!(o, TraceOp::Read(a) if a_region.contains(a))).count();
        prop_assert_eq!(a_reads, mc_blocks * kc * nc_blocks);

        // C balance: reads == writes (read-modify-write of each tile)
        let c_region = layout.c..layout.c + (1 << 27);
        let c_reads = t.iter().filter(|o| matches!(o, TraceOp::Read(a) if c_region.contains(a))).count();
        let c_writes = t.iter().filter(|o| matches!(o, TraceOp::Write(a) if c_region.contains(a))).count();
        prop_assert_eq!(c_reads, c_writes);

        // everything belongs to a known region
        let b_region = layout.packed_b..layout.packed_b + (1 << 27);
        for op in &t {
            let addr = match op {
                TraceOp::Read(a) | TraceOp::Write(a) | TraceOp::Prefetch(a, _) => *a,
            };
            prop_assert!(
                a_region.contains(&addr) || b_region.contains(&addr) || c_region.contains(&addr),
                "stray address {addr:#x}"
            );
        }
    }

    /// Replaying the same trace twice on a warm machine is deterministic:
    /// identical reports.
    #[test]
    fn trace_replay_is_deterministic(
        kc in 8usize..96,
        nc_blocks in 1usize..5,
    ) {
        let blocks = BlockSizes::custom(8, 6, kc, 24, nc_blocks * 6);
        let layout = CoreLayout::for_core(0, 777, &blocks);
        let t = trace_gebp(&layout, &blocks, 24, kc, nc_blocks * 6, 1024, 0);
        let mut m1 = SimMachine::xgene();
        m1.run_trace(0, &t);
        let r1 = m1.run_trace(0, &t);
        let mut m2 = SimMachine::xgene();
        m2.run_trace(0, &t);
        let r2 = m2.run_trace(0, &t);
        prop_assert_eq!(r1, r2);
    }
}
