//! Cache-line-granular address traces of the blocked algorithm.
//!
//! One *macro-iteration* is the unit the evaluation samples: pack one
//! `kc×nc` panel of B, then (per core) pack one `mc×kc` block of A and
//! run the full GEBP over the panel. The trace reproduces the access
//! pattern of Figures 2/3 including the kernel's software prefetches
//! (`PLDL1KEEP` one `PREFA` ahead in the packed-A stream; `PLDL2KEEP`
//! one sliver ahead in the packed-B stream while the last A sliver is
//! being multiplied).
//!
//! Traces are at line granularity: one `Read`/`Write` per 64-byte line
//! per pass. Line-granular *miss counts* equal instruction-granular miss
//! counts (only the first access to a line can miss), so miss rates are
//! formed against the analytic load-instruction counts of
//! [`crate::estimate`].

use armsim::isa::PrfOp;
use armsim::machine::TraceOp;
use perfmodel::cacheblock::BlockSizes;

/// Line size used throughout (the machine's 64 bytes).
pub const LINE: u64 = 64;

/// Simulated-address layout of one core's working set.
#[derive(Clone, Copy, Debug)]
pub struct CoreLayout {
    /// Source A region (column-major, leading dimension `lda_bytes`).
    pub a_src: u64,
    /// Source B region (column-major, leading dimension `ldb_bytes`).
    pub b_src: u64,
    /// C tile region (column-major, leading dimension `ldc_bytes`).
    pub c: u64,
    /// Packed A block (private to the core; L2-resident by design).
    pub packed_a: u64,
    /// Packed B panel (**shared by all cores**; L3-resident by design).
    pub packed_b: u64,
    /// Leading dimension of the A source in bytes.
    pub lda_bytes: u64,
    /// Leading dimension of the B source in bytes.
    pub ldb_bytes: u64,
    /// Leading dimension of C in bytes.
    pub ldc_bytes: u64,
}

impl CoreLayout {
    /// Disjoint, page-aligned regions for `core` of `n×n` operands, with
    /// the packed B panel shared across cores.
    #[must_use]
    pub fn for_core(core: usize, n: usize, blocks: &BlockSizes) -> Self {
        let stride = 1u64 << 28; // 256 MB apart: regions never alias
        let base = 1u64 << 32;
        let per_core = base + core as u64 * (4 * stride);
        CoreLayout {
            a_src: per_core,
            b_src: base - stride, // shared source panel region
            c: per_core + stride,
            packed_a: per_core + 2 * stride,
            packed_b: base - 2 * stride, // shared packed panel
            lda_bytes: (n.max(1) * 8) as u64,
            ldb_bytes: (n.max(1) * 8) as u64,
            ldc_bytes: (n.max(1) * 8) as u64,
            // blocks only affects trace generation, not layout
        }
        .validated(blocks)
    }

    fn validated(self, blocks: &BlockSizes) -> Self {
        assert!(blocks.kc > 0 && blocks.mc > 0 && blocks.nc > 0);
        self
    }
}

/// Emit one `Read` per line of the byte range `[start, start+len)`.
fn read_range(trace: &mut Vec<TraceOp>, start: u64, len: u64) {
    let mut line = start & !(LINE - 1);
    let end = start + len;
    while line < end {
        trace.push(TraceOp::Read(line));
        line += LINE;
    }
}

/// Emit one `Write` per line of the byte range.
fn write_range(trace: &mut Vec<TraceOp>, start: u64, len: u64) {
    let mut line = start & !(LINE - 1);
    let end = start + len;
    while line < end {
        trace.push(TraceOp::Write(line));
        line += LINE;
    }
}

/// Packing one `kc_eff × nc_eff` panel of B: read the source columns,
/// write the packed slivers.
#[must_use]
pub fn trace_pack_b(
    layout: &CoreLayout,
    kc_eff: usize,
    nc_eff: usize,
    k0: usize,
    j0: usize,
) -> Vec<TraceOp> {
    let mut t = Vec::new();
    for j in 0..nc_eff {
        let col = layout.b_src + (j0 + j) as u64 * layout.ldb_bytes + (k0 * 8) as u64;
        read_range(&mut t, col, (kc_eff * 8) as u64);
        // the packed writes of this column land across its sliver; emit
        // the sliver's share of writes sequentially (byte volume exact)
        let w0 = layout.packed_b + (j * kc_eff * 8) as u64;
        write_range(&mut t, w0, (kc_eff * 8) as u64);
    }
    t
}

/// Packing one `mc_eff × kc_eff` block of A: read source columns, write
/// packed slivers.
#[must_use]
pub fn trace_pack_a(
    layout: &CoreLayout,
    mc_eff: usize,
    kc_eff: usize,
    i0: usize,
    k0: usize,
) -> Vec<TraceOp> {
    let mut t = Vec::new();
    for k in 0..kc_eff {
        let col = layout.a_src + (k0 + k) as u64 * layout.lda_bytes + (i0 * 8) as u64;
        read_range(&mut t, col, (mc_eff * 8) as u64);
        let w0 = layout.packed_a + (k * mc_eff * 8) as u64;
        write_range(&mut t, w0, (mc_eff * 8) as u64);
    }
    t
}

/// The GEBP kernel pass: for every B sliver, stream every A sliver
/// against it, touching C once per micro-kernel call, with the paper's
/// prefetches.
///
/// `prefa`/`prefb` are the prefetch distances in bytes (0 disables).
#[must_use]
pub fn trace_gebp(
    layout: &CoreLayout,
    blocks: &BlockSizes,
    mc_eff: usize,
    kc_eff: usize,
    nc_eff: usize,
    prefa: u64,
    prefb: u64,
) -> Vec<TraceOp> {
    let (mr, nr) = (blocks.mr, blocks.nr);
    let a_slivers = mc_eff.div_ceil(mr);
    let b_slivers = nc_eff.div_ceil(nr);
    let a_sliver_bytes = (mr * kc_eff * 8) as u64;
    let b_sliver_bytes = (nr * kc_eff * 8) as u64;
    let mut t = Vec::new();

    for jt in 0..b_slivers {
        let b_base = layout.packed_b + jt as u64 * b_sliver_bytes;
        let n_eff = nr.min(nc_eff - jt * nr);
        for it in 0..a_slivers {
            let a_base = layout.packed_a + it as u64 * a_sliver_bytes;
            let m_eff = mr.min(mc_eff - it * mr);
            let last_a_sliver = it + 1 == a_slivers;

            // C tile: read then write each touched column segment
            for j in 0..n_eff {
                let cc = layout.c + (jt * nr + j) as u64 * layout.ldc_bytes + (it * mr * 8) as u64;
                read_range(&mut t, cc, (m_eff * 8) as u64);
            }

            // the kc loop: A and B streamed together; one A line per
            // mr-column(s), B rows packed contiguously
            let mut a_cursor = a_base;
            let mut b_cursor = b_base;
            let a_end = a_base + a_sliver_bytes;
            let b_end = b_base + b_sliver_bytes;
            let mut last_b_line = u64::MAX;
            for _k in 0..kc_eff {
                // A: one column of the sliver = mr*8 bytes
                if prefa > 0 {
                    let pf = a_cursor + prefa;
                    if pf < a_end + (mr * 8) as u64 {
                        t.push(TraceOp::Prefetch(pf & !(LINE - 1), PrfOp::Pldl1Keep));
                    }
                }
                read_range(&mut t, a_cursor, (mr * 8) as u64);
                a_cursor += (mr * 8) as u64;
                // B: one row of the sliver = nr*8 bytes (dedupe lines —
                // the row usually shares a line with its neighbour)
                let row_start = b_cursor & !(LINE - 1);
                let row_end = b_cursor + (nr * 8) as u64;
                let mut line = row_start;
                while line < row_end {
                    if line != last_b_line {
                        t.push(TraceOp::Read(line));
                        last_b_line = line;
                    }
                    line += LINE;
                }
                b_cursor += (nr * 8) as u64;
                // B-stream prefetch: while multiplying the last A sliver,
                // pull the *next* B sliver into L2 (PREFB = one sliver
                // ahead); issued every iteration like the real kernel so
                // the whole next sliver is covered
                if prefb > 0 && last_a_sliver {
                    let pf = b_cursor + prefb;
                    if pf < b_end + b_sliver_bytes {
                        t.push(TraceOp::Prefetch(pf & !(LINE - 1), PrfOp::Pldl2Keep));
                    }
                }
            }

            // C write-back
            for j in 0..n_eff {
                let cc = layout.c + (jt * nr + j) as u64 * layout.ldc_bytes + (it * mr * 8) as u64;
                write_range(&mut t, cc, (m_eff * 8) as u64);
            }
        }
    }
    t
}

/// One full macro-iteration for one core: pack B (shared), pack A, GEBP.
#[must_use]
pub fn trace_macro_iteration(
    layout: &CoreLayout,
    blocks: &BlockSizes,
    mc_eff: usize,
    kc_eff: usize,
    nc_eff: usize,
    prefa: u64,
    prefb: u64,
) -> Vec<TraceOp> {
    let mut t = trace_pack_b(layout, kc_eff, nc_eff, 0, 0);
    t.extend(trace_pack_a(layout, mc_eff, kc_eff, 0, 0));
    t.extend(trace_gebp(
        layout, blocks, mc_eff, kc_eff, nc_eff, prefa, prefb,
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use armsim::machine::SimMachine;
    use perfmodel::cacheblock::solve_blocking;
    use perfmodel::MachineDesc;

    fn paper_blocks() -> BlockSizes {
        solve_blocking(8, 6, 1, &MachineDesc::xgene()).unwrap()
    }

    #[test]
    fn gebp_trace_volume_matches_loop_arithmetic() {
        let blocks = paper_blocks();
        let layout = CoreLayout::for_core(0, 512, &blocks);
        let (mc, kc, nc) = (56, 128, 48);
        let t = trace_gebp(&layout, &blocks, mc, kc, nc, 0, 0);
        let reads = t.iter().filter(|o| matches!(o, TraceOp::Read(_))).count();
        // A: one 64B line per k per sliver per B sliver:
        let a_reads = (mc / 8) * kc * (nc / 6);
        // B: 48 bytes per row -> ~0.75 lines/row (deduped):
        let b_lines_per_sliver = (6 * kc * 8).div_ceil(64);
        let b_reads = b_lines_per_sliver * (mc / 8) * (nc / 6);
        // C: 1 line per (tile, column):
        let c_reads = (mc / 8) * (nc / 6) * 6;
        let expect = a_reads + b_reads + c_reads;
        let diff = (reads as f64 - expect as f64).abs() / expect as f64;
        assert!(diff < 0.02, "reads {reads} vs expected {expect}");
    }

    #[test]
    fn warm_gebp_stays_out_of_dram_and_prefetch_covers_a() {
        // With the paper's blocking, a warmed GEBP never touches DRAM
        // (A in L2, B panel in L3), and the PLDL1KEEP stream makes the
        // packed-A demand reads hit L1. The B sliver partially re-misses
        // to L2 each pass (LRU aging against the A stream) — bounded by
        // one miss per line per A-sliver pass.
        let blocks = paper_blocks();
        let layout = CoreLayout::for_core(0, 2048, &blocks);
        let (mc, kc, nc) = (blocks.mc, blocks.kc, 192);
        let mut machine = SimMachine::xgene();
        let prefa = 1024;
        let prefb = (blocks.kc * blocks.nr * 8) as u64;
        let warm = trace_macro_iteration(&layout, &blocks, mc, kc, nc, prefa, prefb);
        machine.run_trace(0, &warm);
        machine.reset_stats();
        let t = trace_gebp(&layout, &blocks, mc, kc, nc, prefa, prefb);
        let r = machine.run_trace(0, &t);
        // nothing from DRAM
        assert!(
            (r.mem_accesses as f64) < 0.02 * r.accesses as f64,
            "DRAM touched {} of {}",
            r.mem_accesses,
            r.accesses
        );
        // A demand reads: (mc/mr)*kc lines per B sliver; at most a few
        // percent may miss (prefetch warmup at sliver starts)
        let a_reads = (mc / 8) * kc * nc.div_ceil(6);
        let misses = (r.accesses - r.l1_hits) as usize;
        // all misses <= B once-per-line-per-pass + C + 5% of A
        let b_lines = (6 * kc * 8).div_ceil(64);
        let passes = (mc / 8) * nc.div_ceil(6);
        let c_lines = 2 * passes * 6;
        let bound = b_lines * passes + c_lines + a_reads / 20;
        assert!(
            misses <= bound,
            "misses {misses} exceed structural bound {bound}"
        );
    }

    #[test]
    fn prefetching_reduces_demand_misses() {
        let blocks = paper_blocks();
        let layout = CoreLayout::for_core(0, 2048, &blocks);
        let (mc, kc, nc) = (blocks.mc, blocks.kc, 96);
        let run = |prefa: u64| {
            let mut machine = SimMachine::xgene();
            let warm = trace_macro_iteration(&layout, &blocks, mc, kc, nc, prefa, 0);
            machine.run_trace(0, &warm);
            machine.reset_stats();
            let t = trace_gebp(&layout, &blocks, mc, kc, nc, prefa, 0);
            let r = machine.run_trace(0, &t);
            r.accesses - r.l1_hits
        };
        let without = run(0);
        let with = run(1024);
        assert!(
            with < without,
            "PLDL1KEEP must cut L1 demand misses: {with} vs {without}"
        );
    }

    #[test]
    fn pack_traces_touch_expected_volume() {
        let blocks = paper_blocks();
        let layout = CoreLayout::for_core(0, 1024, &blocks);
        let t = trace_pack_a(&layout, 56, 64, 0, 0);
        let writes = t.iter().filter(|o| matches!(o, TraceOp::Write(_))).count();
        // 56*64 doubles = 28672 bytes = 448 lines
        assert_eq!(writes, 56 * 64 * 8 / 64);
        let t = trace_pack_b(&layout, 64, 48, 0, 0);
        let writes = t.iter().filter(|o| matches!(o, TraceOp::Write(_))).count();
        assert_eq!(writes, 64 * 48 * 8 / 64);
    }

    #[test]
    fn layouts_disjoint_across_cores_except_shared_b() {
        let blocks = paper_blocks();
        let l0 = CoreLayout::for_core(0, 4096, &blocks);
        let l1 = CoreLayout::for_core(1, 4096, &blocks);
        assert_eq!(l0.packed_b, l1.packed_b, "B panel shared");
        assert_eq!(l0.b_src, l1.b_src, "B source shared");
        assert_ne!(l0.packed_a, l1.packed_a);
        assert_ne!(l0.c, l1.c);
        assert_ne!(l0.a_src, l1.a_src);
    }

    #[test]
    fn ragged_edges_do_not_panic_and_cover_c() {
        let blocks = paper_blocks();
        let layout = CoreLayout::for_core(0, 100, &blocks);
        // mc/nc not multiples of mr/nr
        let t = trace_gebp(&layout, &blocks, 53, 37, 41, 1024, 0);
        assert!(!t.is_empty());
        let c_writes = t
            .iter()
            .filter(
                |o| matches!(o, TraceOp::Write(a) if *a >= layout.c && *a < layout.c + (1 << 28)),
            )
            .count();
        assert!(c_writes > 0);
    }
}
