//! Block-size auto-tuning on the simulated machine — the paper's second
//! future-work item ("we also plan to apply auto-tuning to generate a
//! highly optimized GEBP"), turned around: we use a search to *validate*
//! the paper's analytic block sizes, showing the model already lands at
//! (or next to) the empirical optimum, which is the paper's central
//! thesis versus ATLAS.
//!
//! The tuner does a coordinate-descent search over `(kc, mc, nc)` with
//! the estimator as its objective, starting either from the analytic
//! solution or from a deliberately poor corner.

use crate::estimate::{Estimator, SimConfig};
use crate::kernelsim::KernelVariant;

/// One evaluated configuration.
#[derive(Clone, Copy, Debug)]
pub struct TunePoint {
    /// Block sizes evaluated.
    pub kc: usize,
    /// L2 block.
    pub mc: usize,
    /// L3 block.
    pub nc: usize,
    /// Efficiency at the probe size.
    pub efficiency: f64,
}

/// Result of a tuning run.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// The best configuration found.
    pub best: TunePoint,
    /// Every configuration evaluated, in order.
    pub trace: Vec<TunePoint>,
    /// Number of estimator evaluations.
    pub evaluations: usize,
}

/// Search options.
#[derive(Clone, Copy, Debug)]
pub struct TuneOptions {
    /// Problem size the objective is evaluated at.
    pub n: usize,
    /// Thread count.
    pub threads: usize,
    /// Maximum coordinate-descent sweeps.
    pub max_sweeps: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            n: 1536,
            threads: 1,
            max_sweeps: 4,
        }
    }
}

/// Candidate grids per coordinate, spanning the plausible range around
/// the cache sizes (multiples that keep packing aligned).
fn kc_grid() -> Vec<usize> {
    vec![128, 192, 256, 320, 384, 448, 512, 640, 768]
}

fn mc_grid(mr: usize) -> Vec<usize> {
    [8usize, 16, 24, 32, 40, 48, 56, 64, 80, 96, 112]
        .iter()
        .map(|&m| m / mr * mr)
        .filter(|&m| m > 0)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect()
}

fn nc_grid() -> Vec<usize> {
    vec![256, 512, 768, 1024, 1280, 1536, 1792, 1920, 2048]
}

/// Coordinate-descent auto-tune of `(kc, mc, nc)` for one kernel.
pub fn autotune(
    est: &mut Estimator,
    variant: KernelVariant,
    start: (usize, usize, usize),
    opts: &TuneOptions,
) -> TuneResult {
    let mut cur = start;
    let mut trace = Vec::new();
    let mut evaluations = 0usize;

    let eval = |est: &mut Estimator, kc: usize, mc: usize, nc: usize| -> TunePoint {
        let cfg = SimConfig::paper(variant, opts.threads).with_blocks(kc, mc, nc);
        let p = est.estimate(&cfg, opts.n);
        TunePoint {
            kc,
            mc,
            nc,
            efficiency: p.efficiency,
        }
    };

    let mut best = eval(est, cur.0, cur.1, cur.2);
    evaluations += 1;
    trace.push(best);

    for _ in 0..opts.max_sweeps {
        let before = best.efficiency;
        // kc sweep
        for kc in kc_grid() {
            let p = eval(est, kc, cur.1, cur.2);
            evaluations += 1;
            trace.push(p);
            if p.efficiency > best.efficiency {
                best = p;
            }
        }
        cur.0 = best.kc;
        // mc sweep
        for mc in mc_grid(variant.mr()) {
            let p = eval(est, cur.0, mc, cur.2);
            evaluations += 1;
            trace.push(p);
            if p.efficiency > best.efficiency {
                best = p;
            }
        }
        cur.1 = best.mc;
        // nc sweep
        for nc in nc_grid() {
            let p = eval(est, cur.0, cur.1, nc);
            evaluations += 1;
            trace.push(p);
            if p.efficiency > best.efficiency {
                best = p;
            }
        }
        cur.2 = best.nc;
        if best.efficiency - before < 1e-4 {
            break; // converged
        }
    }
    TuneResult {
        best,
        trace,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perfmodel::cacheblock::solve_blocking;
    use perfmodel::MachineDesc;

    /// The analytic solution must be at or within noise of the tuned
    /// optimum *in the asymptotic regime the model targets* (n beyond
    /// nc) — the paper's thesis that the model replaces auto-tuning.
    /// (At small n, smaller blocks legitimately win on edge effects.)
    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "release-only: ~30 full-size cache-sim samples"
    )]
    fn analytic_blocking_is_near_tuned_optimum() {
        let mut est = Estimator::new();
        let analytic = solve_blocking(8, 6, 1, &MachineDesc::xgene()).unwrap();
        let opts = TuneOptions {
            n: 2048,
            threads: 1,
            max_sweeps: 2,
        };
        // start the search from a deliberately bad corner
        let result = autotune(&mut est, KernelVariant::OpenBlas8x6, (128, 8, 256), &opts);
        let cfg = SimConfig::paper(KernelVariant::OpenBlas8x6, 1).with_blocks(
            analytic.kc,
            analytic.mc,
            analytic.nc,
        );
        let analytic_eff = est.estimate(&cfg, opts.n).efficiency;
        assert!(
            analytic_eff >= result.best.efficiency - 0.015,
            "analytic {analytic_eff} vs tuned {} at {}x{}x{}",
            result.best.efficiency,
            result.best.kc,
            result.best.mc,
            result.best.nc
        );
        assert!(result.evaluations > 20);
    }

    #[test]
    fn tuner_improves_from_bad_start() {
        let mut est = Estimator::new();
        let opts = TuneOptions {
            n: 640,
            threads: 1,
            max_sweeps: 1,
        };
        let result = autotune(&mut est, KernelVariant::OpenBlas8x6, (128, 8, 256), &opts);
        let start_eff = result.trace[0].efficiency;
        assert!(
            result.best.efficiency > start_eff + 0.02,
            "tuning must improve a bad start: {start_eff} -> {}",
            result.best.efficiency
        );
    }
}
