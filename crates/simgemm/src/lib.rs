//! # simgemm
//!
//! The evaluation harness: reruns the paper's Section V experiments on
//! the simulated ARMv8 machine. Because full cycle-simulation of a
//! 6400³ DGEMM (5·10¹¹ flops per data point) is computationally
//! impossible, the harness is a *hybrid*:
//!
//! 1. **Kernel timing** ([`kernelsim`]) — the exact generated register
//!    kernels run on the `armsim` pipeline at full fidelity; their
//!    steady-state cycles-per-call are fitted as `prologue + rate·kc`.
//! 2. **Cache behaviour** ([`trace`]) — one representative macro-
//!    iteration (pack B panel, pack A block, full GEBP) is replayed
//!    through the simulated cache hierarchy at cache-line granularity,
//!    including the kernel's software prefetches, yielding per-level
//!    demand-miss counts; multi-threaded runs interleave per-core traces
//!    against the shared L2/L3.
//! 3. **Combination** ([`estimate`]) — exact loop arithmetic scales the
//!    sampled kernel cycles and miss penalties to the full problem,
//!    applying the paper's overlap model (Section III) to the residual
//!    miss latency.
//!
//! [`experiments`] packages the sweeps behind one function per paper
//! table/figure; the `dgemm-bench` binaries print them. [`autotune`]
//! implements the block-size search the paper lists as future work —
//! used here to validate that the analytic blocking already sits at the
//! empirical optimum. [`fullsim`] runs block-sized GEBPs at full
//! instruction-level fidelity as the ground truth the hybrid estimator
//! is checked against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autotune;
pub mod estimate;
pub mod experiments;
pub mod fullsim;
pub mod kernelsim;
pub mod trace;
