//! The hybrid performance estimator: exact loop arithmetic × sampled
//! kernel timing × sampled cache behaviour.
//!
//! For a DGEMM of size `n` (square, as in Section V) under a given
//! kernel/blocking/thread configuration, the estimated execution time is
//!
//! ```text
//! T = Σ_(jj,kk)  max_t [ kernel(t) + pack_A(t) + miss_penalty(t) ] + pack_B/T
//! ```
//!
//! - `kernel(t)`: micro-kernel calls of thread `t` × the pipeline-
//!   simulated per-call cycles ([`crate::kernelsim`]);
//! - `pack_*`: packed bytes over the 16 B/cycle load-store pipe;
//! - `miss_penalty(t)`: demand misses of the sampled macro-iteration
//!   ([`crate::trace`]) scaled to the thread's flops, charged at
//!   `(level_latency − L1_latency) · (1 − overlap)` per the paper's
//!   overlap model (Section III) — most residual latency is hidden by
//!   prefetching and out-of-order slack, so only a calibrated fraction
//!   is charged.

use crate::kernelsim::{profile, KernelProfile, KernelVariant};
use crate::trace::{trace_gebp, trace_pack_a, trace_pack_b, CoreLayout};
use armsim::machine::{SimMachine, TraceReport};
use dgemm_core::parallel::partition_rows;
use perfmodel::cacheblock::{goto_heuristic_blocking, solve_blocking, BlockSizes};
use perfmodel::MachineDesc;
use std::collections::HashMap;

/// A kernel + blocking + thread-count configuration to evaluate.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Register kernel variant.
    pub variant: KernelVariant,
    /// Cache blocking.
    pub blocks: BlockSizes,
    /// Thread (core) count.
    pub threads: usize,
}

impl SimConfig {
    /// The paper's configuration for a variant: analytic blocking for
    /// the OpenBLAS kernels (Table III), the Goto half-cache heuristic
    /// for the ATLAS baseline (ATLAS does not model associativity).
    #[must_use]
    pub fn paper(variant: KernelVariant, threads: usize) -> Self {
        let m = MachineDesc::xgene();
        let blocks = match variant {
            KernelVariant::Atlas5x5 => {
                let mut b = goto_heuristic_blocking(5, 5, &m);
                // ATLAS tunes per thread count too: halve the per-thread
                // A block when both cores of a module are busy
                let sharers = m.l2_sharers(threads.max(1));
                if sharers > 1 {
                    b.mc = (b.mc / sharers / 5).max(1) * 5;
                }
                b
            }
            _ => solve_blocking(variant.mr(), variant.nr(), threads, &m)
                .expect("paper machine solvable"),
        };
        SimConfig {
            variant,
            blocks,
            threads,
        }
    }

    /// Same configuration with explicit `kc×mc×nc` (Table VI rows).
    #[must_use]
    pub fn with_blocks(mut self, kc: usize, mc: usize, nc: usize) -> Self {
        self.blocks = BlockSizes::custom(self.variant.mr(), self.variant.nr(), kc, mc, nc);
        self
    }
}

/// One estimated data point.
#[derive(Clone, Copy, Debug)]
pub struct SimPoint {
    /// Problem size (square).
    pub n: usize,
    /// Estimated Gflops.
    pub gflops: f64,
    /// Fraction of the aggregate peak (`threads × 4.8`).
    pub efficiency: f64,
    /// Estimated total cycles (critical path over threads).
    pub cycles: f64,
    /// L1-dcache-loads (load instructions; the paper's Figure 15).
    pub l1_loads: f64,
    /// L1 demand load misses (Table VII numerator).
    pub l1_misses: f64,
}

impl SimPoint {
    /// L1 load miss rate (Table VII).
    #[must_use]
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_loads == 0.0 {
            0.0
        } else {
            self.l1_misses / self.l1_loads
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    penalty_cycles_per_flop: f64,
    l1_miss_per_flop: f64,
    pack_b_penalty_per_byte: f64,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct SampleKey {
    variant: KernelVariant,
    blocks: (usize, usize, usize, usize, usize),
    eff: (usize, usize, usize),
    threads: usize,
}

/// The estimator; holds profile and sample caches so sweeps are cheap.
pub struct Estimator {
    machine_desc: MachineDesc,
    /// Per-level fraction of residual miss latency charged
    /// (L2, L3, DRAM); the rest is hidden by prefetch/out-of-order
    /// overlap (ψ of eq. (4)). L2 hits are sequential, software-
    /// prefetched streams that pipeline away almost entirely — the
    /// paper's own conclusion from Table VII is that the L1 miss rate is
    /// not performance-critical on this machine; capacity overflows to
    /// L3 and DRAM are what hurt.
    pub level_charge: (f64, f64, f64),
    /// Cycles charged per *prefetch transfer* sourced from (L2, L3,
    /// DRAM): prefetching hides latency but still occupies transfer
    /// bandwidth, which is what makes cache-capacity overflows (e.g. two
    /// mc=56 blocks thrashing a shared L2, Table VI) expensive.
    pub prefetch_charge: (f64, f64, f64),
    /// Per-extra-thread scaling of all beyond-L1 charges: the L3 and the
    /// two memory bridges are shared, so their effective service cost
    /// grows with the number of concurrently streaming cores.
    pub contention_per_thread: f64,
    profiles: HashMap<KernelVariant, KernelProfile>,
    samples: HashMap<SampleKey, Sample>,
}

impl Default for Estimator {
    fn default() -> Self {
        Self::new()
    }
}

impl Estimator {
    /// Estimator with the default calibration.
    #[must_use]
    pub fn new() -> Self {
        Estimator {
            machine_desc: MachineDesc::xgene(),
            level_charge: (0.02, 0.30, 0.20),
            prefetch_charge: (0.75, 1.5, 6.0),
            contention_per_thread: 0.10,
            profiles: HashMap::new(),
            samples: HashMap::new(),
        }
    }

    fn profile_for(&mut self, v: KernelVariant) -> KernelProfile {
        *self.profiles.entry(v).or_insert_with(|| profile(v))
    }

    fn penalty_of(&self, r: &TraceReport, threads: usize) -> f64 {
        let lat = armsim::hierarchy::LatencyConfig::default();
        let (c2, c3, cm) = self.level_charge;
        let (p2, p3, pm) = self.prefetch_charge;
        // chip-shared resources (L3, memory bridges) slow with every
        // concurrently streaming core; the module-shared L2 port only
        // with the second core of a module (8-thread configurations)
        let contention = 1.0 + self.contention_per_thread * (threads.max(1) - 1) as f64;
        let l2_share = self.machine_desc.l2_sharers(threads.max(1)) as f64;
        (r.l2_hits as f64 * (lat.l2 - lat.l1) as f64 * c2 + r.pf_from_l2 as f64 * p2) * l2_share
            + (r.l3_hits as f64 * (lat.l3 - lat.l1) as f64 * c3
                + r.mem_accesses as f64 * (lat.mem - lat.l1) as f64 * cm
                + r.pf_from_l3 as f64 * p3
                + r.pf_from_mem as f64 * pm)
                * contention
    }

    fn sample_for(&mut self, cfg: &SimConfig, n: usize) -> Sample {
        let b = cfg.blocks;
        let eff = (b.mc.min(n), b.kc.min(n), b.nc.min(n));
        let key = SampleKey {
            variant: cfg.variant,
            blocks: (b.mr, b.nr, b.kc, b.mc, b.nc),
            eff,
            threads: cfg.threads,
        };
        if let Some(s) = self.samples.get(&key) {
            return *s;
        }
        let s = self.measure_sample(cfg, eff);
        self.samples.insert(key, s);
        s
    }

    fn measure_sample(&self, cfg: &SimConfig, eff: (usize, usize, usize)) -> Sample {
        let (mc_eff, kc_eff, nc_eff) = eff;
        let blocks = cfg.blocks;
        let t_count = cfg.threads.max(1).min(self.machine_desc.cores);
        let prefa = if blocks.mr * 8 >= 64 { 1024 } else { 512 };
        let prefb = (kc_eff * blocks.nr * 8) as u64;
        let mut machine = SimMachine::new(self.machine_desc.clone(), Default::default());

        // Thread placement follows the paper (Section V): with at most
        // one thread per module (t <= 4), threads are spread across
        // modules so each enjoys a whole L2; only the 8-thread case
        // doubles cores up.
        let modules = self.machine_desc.modules();
        let core_ids: Vec<usize> = (0..t_count)
            .map(|t| {
                if t_count <= modules {
                    t * self.machine_desc.cores_per_module
                } else {
                    t
                }
            })
            .collect();
        let layouts: Vec<CoreLayout> = core_ids
            .iter()
            .map(|&c| CoreLayout::for_core(c, 4096.max(nc_eff), &blocks))
            .collect();

        // B panel packed once (core 0)
        let pack_b = trace_pack_b(&layouts[0], kc_eff, nc_eff, 0, 0);
        // per-core work: pack own A block, then GEBP over the panel
        let core_traces: Vec<(usize, Vec<armsim::machine::TraceOp>)> = (0..t_count)
            .map(|i| {
                let mut t = trace_pack_a(&layouts[i], mc_eff, kc_eff, 0, 0);
                t.extend(trace_gebp(
                    &layouts[i],
                    &blocks,
                    mc_eff,
                    kc_eff,
                    nc_eff,
                    prefa,
                    prefb,
                ));
                (core_ids[i], t)
            })
            .collect();

        // warm pass
        machine.run_trace(0, &pack_b);
        machine.run_traces_interleaved(&core_traces, 64);
        // measured pass
        machine.reset_stats();
        let rb = machine.run_trace(0, &pack_b);
        let reports = machine.run_traces_interleaved(&core_traces, 64);

        let block_flops = 2.0 * mc_eff as f64 * kc_eff as f64 * nc_eff as f64;
        let mut penalty = 0.0;
        let mut misses = 0.0;
        for r in &reports {
            penalty += self.penalty_of(r, t_count);
            misses += (r.accesses - r.l1_hits) as f64;
        }
        let per_core = t_count as f64;
        Sample {
            penalty_cycles_per_flop: penalty / per_core / block_flops,
            l1_miss_per_flop: misses / per_core / block_flops,
            pack_b_penalty_per_byte: self.penalty_of(&rb, t_count)
                / (kc_eff as f64 * nc_eff as f64 * 8.0),
        }
    }

    /// Analytic L1-dcache-load count for the whole DGEMM (kernel operand
    /// loads + C tile loads + packing reads), the paper's Figure 15.
    #[must_use]
    pub fn l1_load_count(&self, cfg: &SimConfig, n: usize) -> f64 {
        let b = cfg.blocks;
        let (mr, nr) = (b.mr, b.nr);
        let v = cfg.variant;
        let mut loads = 0.0;
        let mut jj = 0;
        while jj < n {
            let nc_eff = b.nc.min(n - jj);
            let mut kk = 0;
            while kk < n {
                let kc_eff = b.kc.min(n - kk);
                let calls = (n.div_ceil(mr) * nc_eff.div_ceil(nr)) as f64;
                // operand loads per call + C tile loads + operand preload
                let per_call = v.loads_per_iter() * kc_eff as f64
                    + (mr * nr) as f64 / 2.0
                    + (mr + nr) as f64 / 2.0;
                loads += calls * per_call;
                // packing reads at 16 B/load
                loads += (kc_eff * nc_eff) as f64 / 2.0; // pack B
                loads += (n * kc_eff) as f64 / 2.0; // pack A over all rows
                kk += kc_eff;
            }
            jj += nc_eff;
        }
        loads
    }

    /// Estimate one data point.
    pub fn estimate(&mut self, cfg: &SimConfig, n: usize) -> SimPoint {
        let prof = self.profile_for(cfg.variant);
        self.estimate_with_profile(cfg, n, &prof)
    }

    /// Estimate one data point with an explicit kernel profile (used by
    /// the Figure 13 study, which profiles the kernels under a
    /// steady-state miss model to expose the register-rotation effect).
    pub fn estimate_with_profile(
        &mut self,
        cfg: &SimConfig,
        n: usize,
        prof: &crate::kernelsim::KernelProfile,
    ) -> SimPoint {
        assert!(n > 0);
        let sample = self.sample_for(cfg, n);
        let b = cfg.blocks;
        let threads = cfg.threads.max(1);
        let bands = partition_rows(n, b.mr, threads);
        let ls_bytes_per_cycle = 16.0;

        let mut per_thread = vec![0.0f64; bands.len()];
        let mut shared = 0.0f64;
        let mut jj = 0;
        while jj < n {
            let nc_eff = b.nc.min(n - jj);
            let mut kk = 0;
            while kk < n {
                let kc_eff = b.kc.min(n - kk);
                // shared: pack B (split across threads)
                let pack_b_bytes = (kc_eff * nc_eff * 8) as f64;
                shared += (pack_b_bytes * 2.0 / ls_bytes_per_cycle
                    + pack_b_bytes * sample.pack_b_penalty_per_byte)
                    / threads as f64;
                for (t, &(_, rows)) in bands.iter().enumerate() {
                    let calls = (rows.div_ceil(b.mr) * nc_eff.div_ceil(b.nr)) as f64;
                    let kernel = calls * prof.call_cycles(kc_eff);
                    let pack_a = (rows * kc_eff * 8) as f64 * 2.0 / ls_bytes_per_cycle;
                    let flops_t = 2.0 * rows as f64 * kc_eff as f64 * nc_eff as f64;
                    let penalty = flops_t * sample.penalty_cycles_per_flop;
                    per_thread[t] += kernel + pack_a + penalty;
                }
                kk += kc_eff;
            }
            jj += nc_eff;
        }
        let critical = per_thread.iter().cloned().fold(0.0, f64::max) + shared;
        let flops_total = 2.0 * (n as f64).powi(3);
        let freq = self.machine_desc.freq_ghz;
        let gflops = flops_total * freq / critical;
        let peak = self.machine_desc.peak_gflops(threads);
        SimPoint {
            n,
            gflops,
            efficiency: gflops / peak,
            cycles: critical,
            l1_loads: self.l1_load_count(cfg, n),
            l1_misses: flops_total * sample.l1_miss_per_flop,
        }
    }

    /// Inspect the sampled cache behaviour for a configuration
    /// (penalty cycles/flop, L1 misses/flop, pack-B penalty/byte) —
    /// exposed for calibration and the bench binaries' diagnostics.
    pub fn sample_diagnostics(&mut self, cfg: &SimConfig, n: usize) -> (f64, f64, f64) {
        let s = self.sample_for(cfg, n);
        (
            s.penalty_cycles_per_flop,
            s.l1_miss_per_flop,
            s.pack_b_penalty_per_byte,
        )
    }

    /// Sweep a size range.
    pub fn sweep(&mut self, cfg: &SimConfig, sizes: &[usize]) -> Vec<SimPoint> {
        sizes.iter().map(|&n| self.estimate(cfg, n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_8x6_lands_near_paper_band() {
        let mut est = Estimator::new();
        let cfg = SimConfig::paper(KernelVariant::OpenBlas8x6, 1);
        let p = est.estimate(&cfg, 1536);
        // paper: 4.19 Gflops (87.2%) peak; our structural bound is 87.3%,
        // so anything in the 80-88% band with sane Gflops passes
        assert!(
            (0.78..0.88).contains(&p.efficiency),
            "8x6 serial efficiency {}",
            p.efficiency
        );
        assert!(p.gflops > 3.7 && p.gflops < 4.8, "{}", p.gflops);
    }

    #[test]
    fn kernel_ordering_preserved_at_fixed_size() {
        let mut est = Estimator::new();
        let n = 768;
        let mut eff = |v| {
            let cfg = SimConfig::paper(v, 1);
            est.estimate(&cfg, n).efficiency
        };
        let e86 = eff(KernelVariant::OpenBlas8x6);
        let e84 = eff(KernelVariant::OpenBlas8x4);
        let e44 = eff(KernelVariant::OpenBlas4x4);
        let e55 = eff(KernelVariant::Atlas5x5);
        assert!(
            e86 > e84 && e84 > e55 && e55 > e44,
            "ordering: 8x6 {e86} 8x4 {e84} 5x5 {e55} 4x4 {e44}"
        );
    }

    #[test]
    fn parallel_has_lower_efficiency_but_higher_gflops() {
        let mut est = Estimator::new();
        let n = 1024;
        let s = est.estimate(&SimConfig::paper(KernelVariant::OpenBlas8x6, 1), n);
        let p = est.estimate(&SimConfig::paper(KernelVariant::OpenBlas8x6, 8), n);
        assert!(
            p.gflops > 5.0 * s.gflops,
            "8 threads must scale: {} vs {}",
            p.gflops,
            s.gflops
        );
        assert!(
            p.efficiency <= s.efficiency + 0.02,
            "parallel efficiency at or below serial"
        );
    }

    #[test]
    fn miss_rate_in_paper_ballpark() {
        // Table VII: 8x6 serial 5.2%; accept a broad band
        let mut est = Estimator::new();
        let cfg = SimConfig::paper(KernelVariant::OpenBlas8x6, 1);
        let p = est.estimate(&cfg, 1536);
        let rate = p.l1_miss_rate();
        assert!(
            (0.005..0.12).contains(&rate),
            "L1 miss rate {rate} out of plausible band"
        );
    }

    #[test]
    fn l1_loads_ordering_matches_figure15() {
        // 8x6 issues the fewest loads, 4x4 the most
        let est = Estimator::new();
        let n = 1024;
        let loads = |v| {
            let cfg = SimConfig::paper(v, 1);
            est.l1_load_count(&cfg, n)
        };
        let l86 = loads(KernelVariant::OpenBlas8x6);
        let l84 = loads(KernelVariant::OpenBlas8x4);
        let l44 = loads(KernelVariant::OpenBlas4x4);
        assert!(l86 < l84 && l84 < l44, "{l86} {l84} {l44}");
    }

    #[test]
    fn small_sizes_do_not_panic_and_stay_sane() {
        let mut est = Estimator::new();
        for n in [1, 7, 64, 100] {
            let cfg = SimConfig::paper(KernelVariant::OpenBlas8x6, 1);
            let p = est.estimate(&cfg, n);
            assert!(p.gflops > 0.0 && p.gflops < 4.81, "n={n}: {}", p.gflops);
        }
    }

    #[test]
    fn sweep_caches_samples() {
        let mut est = Estimator::new();
        let cfg = SimConfig::paper(KernelVariant::OpenBlas8x6, 1);
        // sizes beyond nc share one sample; the sweep must stay fast
        let pts = est.sweep(&cfg, &[2048, 2176, 2304]);
        assert_eq!(pts.len(), 3);
        assert_eq!(
            est.samples.len(),
            1,
            "one cached sample for saturated sizes"
        );
    }
}
