//! Full instruction-level simulation of one GEBP invocation — the
//! ground truth the hybrid estimator is checked against.
//!
//! Where [`crate::estimate`] samples — pipeline timing of one kernel
//! call plus line-granular cache traces — this module runs *every*
//! micro-kernel call of an `mc×kc × kc×nc` GEBP as generated A64
//! instructions on the simulated core with the shared cache hierarchy
//! carried across calls. It is O(mc·kc·nc) and therefore only practical
//! for block-sized problems, which is exactly what's needed to validate
//! the estimator's per-GEBP arithmetic.

use armsim::core::{CoreSim, RunReport};
use armsim::machine::SimMachine;
use kernels::regkernel::{generate_microkernel_call, GebpAddrs, KernelSpec};

/// Result of a full GEBP simulation.
#[derive(Clone, Debug)]
pub struct FullSimResult {
    /// The `mc×nc` C tile (column-major, ld = mc).
    pub c: Vec<f64>,
    /// Total cycles across all micro-kernel calls.
    pub cycles: u64,
    /// Total flops.
    pub flops: u64,
    /// Demand accesses by level, aggregated.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// Memory accesses.
    pub mem_accesses: u64,
    /// Micro-kernel calls executed.
    pub calls: usize,
}

impl FullSimResult {
    /// Fraction of the 2 flops/cycle peak.
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        self.flops as f64 / (2.0 * self.cycles as f64)
    }
}

/// Simulate `C(mc×nc) += A_packed · B_packed` instruction by
/// instruction. `mc`/`nc` must be multiples of the kernel shape;
/// `packed_a` is `mc×kc` in `mr`-sliver layout, `packed_b` is `kc×nc` in
/// `nr`-sliver layout; `c0` is the initial `mc×nc` tile.
///
/// The cache `machine` is shared across calls (and with the caller), so
/// warm-up and inter-call locality behave as on hardware.
#[allow(clippy::too_many_arguments)] // mirrors the GEBP call signature
pub fn simulate_gebp_full(
    spec: &KernelSpec,
    kc: usize,
    mc: usize,
    nc: usize,
    packed_a: &[f64],
    packed_b: &[f64],
    c0: &[f64],
    machine: &mut SimMachine,
) -> FullSimResult {
    let shape = spec.shape();
    let (mr, nr) = (shape.mr, shape.nr);
    assert!(
        mc.is_multiple_of(mr) && nc.is_multiple_of(nr),
        "full sim needs whole tiles"
    );
    assert_eq!(packed_a.len(), mc * kc);
    assert_eq!(packed_b.len(), kc * nc);
    assert_eq!(c0.len(), mc * nc);

    let mut core = CoreSim::new(0, 64 << 20);
    // one extra column/row of padding per operand: the final unrolled
    // copy's lookahead loads read one step past the sliver
    let a_base = core.mem.alloc(packed_a.len() * 8 + mr * 8, 64);
    let b_base = core.mem.alloc(packed_b.len() * 8 + nr * 8, 64);
    let c_base = core.mem.alloc(c0.len() * 8, 64);
    core.mem.store_slice(a_base, packed_a);
    core.mem.store_slice(b_base, packed_b);
    core.mem.store_slice(c_base, c0);

    let a_sliver_bytes = (mr * kc * 8) as u64;
    let b_sliver_bytes = (nr * kc * 8) as u64;
    let ldc_bytes = (mc * 8) as u64;

    let mut total = FullSimResult {
        c: Vec::new(),
        cycles: 0,
        flops: 0,
        l1_hits: 0,
        l2_hits: 0,
        l3_hits: 0,
        mem_accesses: 0,
        calls: 0,
    };

    for jt in 0..nc / nr {
        for it in 0..mc / mr {
            let addrs = GebpAddrs {
                a: a_base + it as u64 * a_sliver_bytes,
                b: b_base + jt as u64 * b_sliver_bytes,
                c: c_base + (it * mr * 8) as u64 + jt as u64 * nr as u64 * ldc_bytes,
                ldc_bytes,
            };
            let stream = generate_microkernel_call(spec, kc, &addrs);
            let r: RunReport = core.run(&stream, machine);
            total.cycles += r.cycles;
            total.flops += r.pipe.flops;
            total.l1_hits += r.mem.l1_hits;
            total.l2_hits += r.mem.l2_hits;
            total.l3_hits += r.mem.l3_hits;
            total.mem_accesses += r.mem.mem_accesses;
            total.calls += 1;
        }
    }
    total.c = core.mem.load_slice(c_base, mc * nc);
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgemm_core::gebp::gebp;
    use dgemm_core::matrix::Matrix;
    use dgemm_core::microkernel::MicroKernelKind;
    use dgemm_core::pack::{PackedA, PackedB};
    use dgemm_core::tile::TileMut;
    use dgemm_core::Transpose;

    fn packed(mc: usize, kc: usize, nc: usize) -> (PackedA, PackedB, Matrix, Matrix, Matrix) {
        let a = Matrix::random(mc, kc, 1);
        let b = Matrix::random(kc, nc, 2);
        let c0 = Matrix::random(mc, nc, 3);
        let mut pa = PackedA::new(8);
        pa.pack(&a.view(), Transpose::No, 0, 0, mc, kc);
        let mut pb = PackedB::new(6);
        pb.pack(&b.view(), Transpose::No, 0, 0, kc, nc);
        (pa, pb, a, b, c0)
    }

    #[test]
    fn full_sim_matches_native_gebp() {
        let (mc, kc, nc) = (16, 24, 12);
        let (pa, pb, _a, _b, c0) = packed(mc, kc, nc);
        let spec = KernelSpec::paper_8x6(None);
        let mut machine = SimMachine::xgene();
        let sim = simulate_gebp_full(
            &spec,
            kc,
            mc,
            nc,
            pa.buf(),
            pb.buf(),
            c0.as_slice(),
            &mut machine,
        );

        let mut c_native = c0.clone();
        {
            let mut tile = TileMut::from_slice(mc, nc, mc, c_native.as_mut_slice());
            gebp(MicroKernelKind::Mk8x6, 1.0, &pa, &pb, &mut tile);
        }
        for (s, p) in sim.c.iter().zip(c_native.as_slice()) {
            assert!((s - p).abs() < 1e-10 * (1.0 + p.abs()), "{s} vs {p}");
        }
        assert_eq!(sim.calls, (mc / 8) * (nc / 6));
        assert_eq!(sim.flops, (2 * mc * kc * nc) as u64);
    }

    #[test]
    fn warm_full_sim_approaches_kernel_bound() {
        // one warm pass, then a measured pass: efficiency should be
        // within a few points of the 87.3% structural bound
        let (mc, kc, nc) = (24, 128, 24);
        let (pa, pb, _a, _b, c0) = packed(mc, kc, nc);
        let spec = KernelSpec::paper_8x6(None);
        let mut machine = SimMachine::xgene();
        let _ = simulate_gebp_full(
            &spec,
            kc,
            mc,
            nc,
            pa.buf(),
            pb.buf(),
            c0.as_slice(),
            &mut machine,
        );
        let warm = simulate_gebp_full(
            &spec,
            kc,
            mc,
            nc,
            pa.buf(),
            pb.buf(),
            c0.as_slice(),
            &mut machine,
        );
        assert!(
            warm.efficiency() > 0.70,
            "warm full-sim efficiency {}",
            warm.efficiency()
        );
        // and the C accumulated twice: 2*(A·B) + c0; spot check one value
        assert!(warm.calls > 0);
    }

    #[test]
    fn full_sim_efficiency_tracks_estimator_kernel_rate() {
        // the estimator's fitted cycles/kc for the kernel body must agree
        // with the instruction-level ground truth within ~15%
        let (mc, kc, nc) = (16, 96, 12);
        let (pa, pb, _a, _b, c0) = packed(mc, kc, nc);
        let spec = KernelSpec::paper_8x6(None);
        let mut machine = SimMachine::xgene();
        let _ = simulate_gebp_full(
            &spec,
            kc,
            mc,
            nc,
            pa.buf(),
            pb.buf(),
            c0.as_slice(),
            &mut machine,
        );
        let warm = simulate_gebp_full(
            &spec,
            kc,
            mc,
            nc,
            pa.buf(),
            pb.buf(),
            c0.as_slice(),
            &mut machine,
        );

        let prof = crate::kernelsim::profile(crate::kernelsim::KernelVariant::OpenBlas8x6);
        let predicted = prof.call_cycles(kc) * warm.calls as f64;
        let actual = warm.cycles as f64;
        let ratio = actual / predicted;
        assert!(
            (0.85..1.25).contains(&ratio),
            "instruction-level {actual} vs estimator {predicted} (ratio {ratio})"
        );
    }
}
