//! Steady-state timing of the register kernels on the pipeline model.
//!
//! Each kernel variant is profiled by generating its full micro-kernel
//! call stream at two depths and fitting `cycles(kc) = overhead +
//! rate·kc`. The ATLAS-like 5×5 kernel, whose odd shape cannot map onto
//! whole 2-lane vector operations, is profiled from a synthetic stream
//! with its structural instruction mix (25 two-lane FMAs and 12 loads
//! per iteration *pair*, the odd lanes amortized across consecutive
//! k-steps) — the γ = 5 handicap the paper attributes to it.

use armsim::core::CoreSim;
use armsim::isa::Instr;
use dgemm_core::microkernel::MicroKernelKind;
use kernels::regkernel::{generate_microkernel_call, GebpAddrs, KernelSpec};

/// Kernel variants the evaluation sweeps over.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelVariant {
    /// The paper's 8×6 kernel (rotation + scheduling).
    OpenBlas8x6,
    /// 8×6 without register rotation (Figure 13 baseline).
    OpenBlas8x6NoRR,
    /// The 8×4 comparison kernel.
    OpenBlas8x4,
    /// The 4×4 comparison kernel.
    OpenBlas4x4,
    /// The ATLAS 5×5 baseline.
    Atlas5x5,
}

impl KernelVariant {
    /// All variants in the paper's usual presentation order.
    pub const ALL: [KernelVariant; 5] = [
        KernelVariant::OpenBlas8x6,
        KernelVariant::OpenBlas8x6NoRR,
        KernelVariant::OpenBlas8x4,
        KernelVariant::OpenBlas4x4,
        KernelVariant::Atlas5x5,
    ];

    /// The four variants of Figures 11/12 (no-rotation excluded).
    pub const FIGURE11: [KernelVariant; 4] = [
        KernelVariant::OpenBlas8x6,
        KernelVariant::OpenBlas8x4,
        KernelVariant::OpenBlas4x4,
        KernelVariant::Atlas5x5,
    ];

    /// Register-block rows.
    #[must_use]
    pub fn mr(&self) -> usize {
        match self {
            KernelVariant::OpenBlas8x6
            | KernelVariant::OpenBlas8x6NoRR
            | KernelVariant::OpenBlas8x4 => 8,
            KernelVariant::OpenBlas4x4 => 4,
            KernelVariant::Atlas5x5 => 5,
        }
    }

    /// Register-block columns.
    #[must_use]
    pub fn nr(&self) -> usize {
        match self {
            KernelVariant::OpenBlas8x6 | KernelVariant::OpenBlas8x6NoRR => 6,
            KernelVariant::OpenBlas8x4 | KernelVariant::OpenBlas4x4 => 4,
            KernelVariant::Atlas5x5 => 5,
        }
    }

    /// Paper-style label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            KernelVariant::OpenBlas8x6 => "OpenBLAS-8x6",
            KernelVariant::OpenBlas8x6NoRR => "OpenBLAS-8x6w/oRR",
            KernelVariant::OpenBlas8x4 => "OpenBLAS-8x4",
            KernelVariant::OpenBlas4x4 => "OpenBLAS-4x4",
            KernelVariant::Atlas5x5 => "ATLAS-5x5",
        }
    }

    /// The portable microkernel this variant corresponds to (the
    /// no-rotation variant shares the 8×6 shape).
    #[must_use]
    pub fn portable_kind(&self) -> MicroKernelKind {
        match self {
            KernelVariant::OpenBlas8x6 | KernelVariant::OpenBlas8x6NoRR => MicroKernelKind::Mk8x6,
            KernelVariant::OpenBlas8x4 => MicroKernelKind::Mk8x4,
            KernelVariant::OpenBlas4x4 => MicroKernelKind::Mk4x4,
            KernelVariant::Atlas5x5 => MicroKernelKind::Mk5x5,
        }
    }

    /// 128-bit loads per rank-1 update: `(mr+nr)/2` for even shapes; the
    /// 5×5 kernel needs 6 (3 q-loads per 5-element operand, amortizing
    /// the odd lanes across iteration pairs).
    #[must_use]
    pub fn loads_per_iter(&self) -> f64 {
        if *self == KernelVariant::Atlas5x5 {
            6.0
        } else {
            (self.mr() + self.nr()) as f64 / 2.0
        }
    }

    /// FMA issue slots per rank-1 update: `mr·nr/2` for even shapes;
    /// 12.5 for 5×5 (25 two-lane FMAs per iteration *pair*, the odd C
    /// element's lanes paired across consecutive k-steps).
    #[must_use]
    pub fn fma_slots_per_iter(&self) -> f64 {
        if *self == KernelVariant::Atlas5x5 {
            12.5
        } else {
            (self.mr() * self.nr()) as f64 / 2.0
        }
    }

    /// Useful flops per rank-1 update (`2·mr·nr`).
    #[must_use]
    pub fn flops_per_iter(&self) -> usize {
        2 * self.mr() * self.nr()
    }
}

/// Fitted timing of one kernel variant.
#[derive(Clone, Copy, Debug)]
pub struct KernelProfile {
    /// Variant profiled.
    pub variant: KernelVariant,
    /// Fixed per-call overhead in cycles (C tile load/store, preloads).
    pub overhead_cycles: f64,
    /// Cycles per unit of `kc` in steady state.
    pub cycles_per_k: f64,
    /// Structural efficiency bound of the body
    /// (`flops_per_iter / (cycles_per_k · flops_per_cycle)`).
    pub body_efficiency: f64,
}

impl KernelProfile {
    /// Cycles of one micro-kernel call at depth `kc`.
    #[must_use]
    pub fn call_cycles(&self, kc: usize) -> f64 {
        self.overhead_cycles + self.cycles_per_k * kc as f64
    }
}

/// Miss-injection settings for stressed profiling (`None` = perfect L1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MissModel {
    /// Every `period`-th load misses L1.
    pub period: u64,
    /// Latency of a missing load (L2 hit latency by default).
    pub latency: u64,
}

impl MissModel {
    /// The steady-state GEBP miss profile our cache study measures:
    /// roughly one load in nine misses to L2 (Table VII territory).
    #[must_use]
    pub fn gebp_steady_state() -> Self {
        MissModel {
            period: 9,
            latency: 14,
        }
    }
}

fn run_stream(stream: &[armsim::isa::Instr], miss: Option<MissModel>) -> u64 {
    let mut core = CoreSim::new(0, 16 << 20);
    match miss {
        None => core.run_perfect_l1(stream, 4).cycles,
        Some(m) => {
            core.run_with_periodic_miss(stream, 4, m.latency, m.period)
                .cycles
        }
    }
}

fn measure_even_kernel(spec: &KernelSpec, kc: usize, miss: Option<MissModel>) -> u64 {
    let shape = spec.shape();
    let addrs = GebpAddrs {
        a: 4096,
        b: 4096 + kernels::regkernel::padded_a_bytes(shape.mr, kc) as u64 + 64,
        c: 8 << 20,
        ldc_bytes: (shape.mr * 8) as u64,
    };
    let stream = generate_microkernel_call(spec, kc, &addrs);
    run_stream(&stream, miss)
}

/// Synthetic 5×5 stream, modelled per iteration *pair* (the odd fifth
/// lane of each operand is paired with the next k-step's): 25 two-lane
/// FMAs + 12 loads per 2 rank-1 updates, plus a 13-register C tile
/// prologue/epilogue. This reproduces the γ = 5 register kernel the
/// paper attributes to ATLAS.
fn measure_5x5(kc: usize, miss: Option<MissModel>) -> u64 {
    let mut stream = Vec::new();
    stream.push(Instr::MovX { xd: 14, imm: 4096 });
    stream.push(Instr::MovX { xd: 15, imm: 65536 });
    // C tile: 25 elements -> 13 q-registers v19..v31
    for r in 0..13u8 {
        stream.push(Instr::LdrQOff {
            qd: 19 + r,
            base: 15,
            off: (r as i64) * 16,
        });
    }
    // operands double-buffered in v0..v11 (6 regs per pair phase)
    for g in 0..kc / 2 {
        let ph = (g % 2) as u8 * 6;
        let rd = (1 - g % 2) as u8 * 6;
        // interleave 12 loads among 25 FMAs, evenly (one load every
        // two FMAs, trailing FMAs unbroken)
        let mut loads = (0..12u8).peekable();
        for s in 0..25u8 {
            if s % 2 == 0 {
                if let Some(l) = loads.next() {
                    stream.push(Instr::LdrQOff {
                        qd: ph + (l % 6),
                        base: 14,
                        off: (g as i64 % 8) * 16,
                    });
                }
            }
            stream.push(Instr::Fmla {
                vd: 19 + (s % 13),
                vn: rd + (s % 3),
                vm: rd + 3 + (s % 3),
                lane: Some(s % 2),
            });
        }
    }
    for r in 0..13u8 {
        stream.push(Instr::StrQOff {
            qs: 19 + r,
            base: 15,
            off: (r as i64) * 16,
        });
    }
    run_stream(&stream, miss)
}

/// Profile one variant by fitting two depths, optionally under a
/// deterministic miss model.
#[must_use]
pub fn profile_with_misses(variant: KernelVariant, miss: Option<MissModel>) -> KernelProfile {
    let (k1, k2) = (128usize, 512usize);
    let (c1, c2) = match variant {
        KernelVariant::OpenBlas8x6 => {
            let spec = KernelSpec::paper_8x6(None);
            (
                measure_even_kernel(&spec, k1, miss),
                measure_even_kernel(&spec, k2, miss),
            )
        }
        KernelVariant::OpenBlas8x6NoRR => {
            let spec = KernelSpec::paper_8x6_no_rotation(None);
            (
                measure_even_kernel(&spec, k1, miss),
                measure_even_kernel(&spec, k2, miss),
            )
        }
        KernelVariant::OpenBlas8x4 => {
            let spec = KernelSpec::paper_8x4();
            (
                measure_even_kernel(&spec, k1, miss),
                measure_even_kernel(&spec, k2, miss),
            )
        }
        KernelVariant::OpenBlas4x4 => {
            let spec = KernelSpec::paper_4x4();
            (
                measure_even_kernel(&spec, k1, miss),
                measure_even_kernel(&spec, k2, miss),
            )
        }
        KernelVariant::Atlas5x5 => (measure_5x5(k1, miss), measure_5x5(k2, miss)),
    };
    let rate = (c2 - c1) as f64 / (k2 - k1) as f64;
    let overhead = c1 as f64 - rate * k1 as f64;
    let peak = 2.0; // flops per cycle (one 2-lane FMA per 2 cycles)
    KernelProfile {
        variant,
        overhead_cycles: overhead.max(0.0),
        cycles_per_k: rate,
        body_efficiency: variant.flops_per_iter() as f64 / (rate * peak),
    }
}

/// Profile one variant under perfect L1 (the default used by the
/// performance sweeps).
#[must_use]
pub fn profile(variant: KernelVariant) -> KernelProfile {
    profile_with_misses(variant, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_positive_and_linear() {
        for v in KernelVariant::ALL {
            let p = profile(v);
            assert!(p.cycles_per_k > 0.0, "{}", v.label());
            assert!(p.overhead_cycles >= 0.0);
            assert!(p.call_cycles(512) > p.call_cycles(128));
        }
    }

    #[test]
    fn efficiency_ordering_matches_paper() {
        // Section V-B: 8x6 > 8x4 > 4x4 and 5x5 between 8x4 and 4x4-ish;
        // the hard requirement is 8x6 first, 4x4 worst of the OpenBLAS
        // trio, ATLAS below 8x6.
        let e = |v| profile(v).body_efficiency;
        let e86 = e(KernelVariant::OpenBlas8x6);
        let e84 = e(KernelVariant::OpenBlas8x4);
        let e44 = e(KernelVariant::OpenBlas4x4);
        let e55 = e(KernelVariant::Atlas5x5);
        assert!(e86 > e84, "8x6 {e86} vs 8x4 {e84}");
        assert!(e84 > e44, "8x4 {e84} vs 4x4 {e44}");
        assert!(e86 > e55, "8x6 {e86} vs 5x5 {e55}");
        assert!(e55 > e44, "5x5 {e55} vs 4x4 {e44} (paper Fig. 11 order)");
    }

    #[test]
    fn body_efficiencies_near_structural_bounds() {
        // 2F+L model: 8x6 -> 48/55 = 87.3%, 8x4 -> 32/38 = 84.2%,
        // 4x4 -> 16/20 = 80%
        let p86 = profile(KernelVariant::OpenBlas8x6);
        assert!(
            (p86.body_efficiency - 48.0 / 55.0).abs() < 0.03,
            "{}",
            p86.body_efficiency
        );
        let p84 = profile(KernelVariant::OpenBlas8x4);
        assert!(
            (p84.body_efficiency - 32.0 / 38.0).abs() < 0.03,
            "{}",
            p84.body_efficiency
        );
        let p44 = profile(KernelVariant::OpenBlas4x4);
        assert!(
            (p44.body_efficiency - 16.0 / 20.0).abs() < 0.03,
            "{}",
            p44.body_efficiency
        );
    }

    #[test]
    fn instruction_mix_counters() {
        assert_eq!(KernelVariant::OpenBlas8x6.loads_per_iter(), 7.0);
        assert_eq!(KernelVariant::OpenBlas8x6.fma_slots_per_iter(), 24.0);
        assert_eq!(KernelVariant::OpenBlas8x6.flops_per_iter(), 96);
        assert_eq!(KernelVariant::Atlas5x5.loads_per_iter(), 6.0);
        assert_eq!(KernelVariant::Atlas5x5.fma_slots_per_iter(), 12.5);
        assert_eq!(KernelVariant::Atlas5x5.flops_per_iter(), 50);
        assert_eq!(KernelVariant::OpenBlas8x4.loads_per_iter(), 6.0);
    }
}
