//! One driver per table/figure of the paper's Section V.
//!
//! Each function returns plain data; the `dgemm-bench` binaries format
//! it. Figures 11–15 use the paper's size grid (256…6400 step 128) by
//! default — pass a smaller grid for quick runs.

use crate::estimate::{Estimator, SimConfig, SimPoint};
use crate::kernelsim::KernelVariant;

/// The paper's size grid: 256 to 6400, step 128.
#[must_use]
pub fn paper_sizes() -> Vec<usize> {
    (256..=6400).step_by(128).collect()
}

/// A coarser grid for quick runs (step 512).
#[must_use]
pub fn quick_sizes() -> Vec<usize> {
    (256..=6400).step_by(512).collect()
}

/// One performance curve.
#[derive(Clone, Debug)]
pub struct Curve {
    /// Legend label (paper style).
    pub label: String,
    /// Points along the size grid.
    pub points: Vec<SimPoint>,
}

impl Curve {
    /// Peak Gflops along the curve.
    #[must_use]
    pub fn peak_gflops(&self) -> f64 {
        self.points.iter().map(|p| p.gflops).fold(0.0, f64::max)
    }

    /// Peak efficiency along the curve.
    #[must_use]
    pub fn peak_efficiency(&self) -> f64 {
        self.points.iter().map(|p| p.efficiency).fold(0.0, f64::max)
    }

    /// Mean efficiency along the curve.
    #[must_use]
    pub fn avg_efficiency(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.efficiency).sum::<f64>() / self.points.len() as f64
    }
}

/// Figures 11 (threads = 1) / 12 (threads = 8): the four kernel variants
/// across the size grid.
pub fn performance_sweep(est: &mut Estimator, sizes: &[usize], threads: usize) -> Vec<Curve> {
    KernelVariant::FIGURE11
        .iter()
        .map(|&v| {
            let cfg = SimConfig::paper(v, threads);
            Curve {
                label: v.label().to_string(),
                points: est.sweep(&cfg, sizes),
            }
        })
        .collect()
}

/// One row of Table V.
#[derive(Clone, Debug)]
pub struct EfficiencyRow {
    /// Kernel label.
    pub label: String,
    /// Peak efficiency, 1 thread.
    pub peak_serial: f64,
    /// Peak efficiency, 8 threads.
    pub peak_parallel: f64,
    /// Average efficiency, 1 thread.
    pub avg_serial: f64,
    /// Average efficiency, 8 threads.
    pub avg_parallel: f64,
}

/// Table V: peak and average efficiencies of the four variants, serial
/// and 8-thread.
pub fn table5(est: &mut Estimator, sizes: &[usize]) -> Vec<EfficiencyRow> {
    let serial = performance_sweep(est, sizes, 1);
    let parallel = performance_sweep(est, sizes, 8);
    serial
        .iter()
        .zip(&parallel)
        .map(|(s, p)| EfficiencyRow {
            label: s.label.clone(),
            peak_serial: s.peak_efficiency(),
            peak_parallel: p.peak_efficiency(),
            avg_serial: s.avg_efficiency(),
            avg_parallel: p.avg_efficiency(),
        })
        .collect()
}

/// Figure 13: 8×6 with and without register rotation, serial and
/// 8-thread.
///
/// Both kernels are profiled under the steady-state miss model
/// ([`crate::kernelsim::MissModel::gebp_steady_state`]): with every load
/// hitting L1 the two schedules are indistinguishable, but under the
/// real GEBP's residual L1 misses the rotated kernel's wider load→use
/// windows absorb the L2 latency that stalls the unrotated kernel — the
/// mechanism behind the paper's Figure 13 gap.
pub fn figure13(est: &mut Estimator, sizes: &[usize]) -> Vec<Curve> {
    use crate::kernelsim::{profile_with_misses, MissModel};
    let miss = Some(MissModel::gebp_steady_state());
    let mut out = Vec::new();
    for threads in [1usize, 8] {
        for v in [KernelVariant::OpenBlas8x6, KernelVariant::OpenBlas8x6NoRR] {
            // blocking of the rotated kernel in both cases (same shape)
            let cfg = SimConfig::paper(KernelVariant::OpenBlas8x6, threads);
            let prof = profile_with_misses(v, miss);
            let points = sizes
                .iter()
                .map(|&n| est.estimate_with_profile(&cfg, n, &prof))
                .collect();
            out.push(Curve {
                label: format!(
                    "{} ({} thread{})",
                    v.label(),
                    threads,
                    if threads > 1 { "s" } else { "" }
                ),
                points,
            });
        }
    }
    out
}

/// Figure 14: 8×6 under 1/2/4/8 threads with per-count analytic blocks.
pub fn figure14(est: &mut Estimator, sizes: &[usize]) -> Vec<Curve> {
    [1usize, 2, 4, 8]
        .iter()
        .map(|&t| {
            let cfg = SimConfig::paper(KernelVariant::OpenBlas8x6, t);
            Curve {
                label: format!(
                    "{} thread{} {}",
                    t,
                    if t > 1 { "s" } else { " " },
                    cfg.blocks.label()
                ),
                points: est.sweep(&cfg, sizes),
            }
        })
        .collect()
}

/// One row of Table VI.
#[derive(Clone, Debug)]
pub struct BlockSizeRow {
    /// Setting name (`Serial` / `Parallel (8 Threads)`).
    pub setting: &'static str,
    /// `kc × mc × nc` label.
    pub blocks: String,
    /// Whether this row is the paper's analytically derived choice.
    pub ours: bool,
    /// Peak efficiency over the grid.
    pub peak: f64,
    /// Average efficiency over the grid.
    pub avg: f64,
}

/// Table VI: 8×6 performance under alternative block sizes.
pub fn table6(est: &mut Estimator, sizes: &[usize]) -> Vec<BlockSizeRow> {
    let mut rows = Vec::new();
    let serial_rows: [(usize, usize, usize, bool); 2] =
        [(512, 56, 1920, true), (320, 96, 1536, false)];
    for (kc, mc, nc, ours) in serial_rows {
        let cfg = SimConfig::paper(KernelVariant::OpenBlas8x6, 1).with_blocks(kc, mc, nc);
        let c = Curve {
            label: String::new(),
            points: est.sweep(&cfg, sizes),
        };
        rows.push(BlockSizeRow {
            setting: "Serial",
            blocks: format!("{kc}x{mc}x{nc}"),
            ours,
            peak: c.peak_efficiency(),
            avg: c.avg_efficiency(),
        });
    }
    let parallel_rows: [(usize, usize, usize, bool); 4] = [
        (512, 24, 1792, true),
        (512, 24, 1920, false),
        (512, 56, 1792, false),
        (512, 56, 1920, false),
    ];
    for (kc, mc, nc, ours) in parallel_rows {
        let cfg = SimConfig::paper(KernelVariant::OpenBlas8x6, 8).with_blocks(kc, mc, nc);
        let c = Curve {
            label: String::new(),
            points: est.sweep(&cfg, sizes),
        };
        rows.push(BlockSizeRow {
            setting: "Parallel (8 Threads)",
            blocks: format!("{kc}x{mc}x{nc}"),
            ours,
            peak: c.peak_efficiency(),
            avg: c.avg_efficiency(),
        });
    }
    rows
}

/// Figure 15 / Table VII data: per-kernel L1 load counts and miss rates,
/// serial and 8-thread.
#[derive(Clone, Debug)]
pub struct L1Row {
    /// Kernel label.
    pub label: String,
    /// Thread count.
    pub threads: usize,
    /// Points: (n, L1-dcache-loads, miss rate).
    pub points: Vec<(usize, f64, f64)>,
}

/// The three OpenBLAS kernels' L1 behaviour (Figure 15 + Table VII).
pub fn l1_study(est: &mut Estimator, sizes: &[usize]) -> Vec<L1Row> {
    let kernels = [
        KernelVariant::OpenBlas8x6,
        KernelVariant::OpenBlas8x4,
        KernelVariant::OpenBlas4x4,
    ];
    let mut rows = Vec::new();
    for threads in [1usize, 8] {
        for &v in &kernels {
            let cfg = SimConfig::paper(v, threads);
            let pts = est
                .sweep(&cfg, sizes)
                .into_iter()
                .map(|p| (p.n, p.l1_loads, p.l1_miss_rate()))
                .collect();
            rows.push(L1Row {
                label: v.label().to_string(),
                threads,
                points: pts,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_sizes() -> Vec<usize> {
        vec![256, 512]
    }

    #[test]
    fn sweep_produces_all_curves() {
        let mut est = Estimator::new();
        let curves = performance_sweep(&mut est, &tiny_sizes(), 1);
        assert_eq!(curves.len(), 4);
        for c in &curves {
            assert_eq!(c.points.len(), 2);
            assert!(c.peak_gflops() > 0.0);
        }
    }

    #[test]
    fn table5_best_is_8x6() {
        let mut est = Estimator::new();
        let rows = table5(&mut est, &tiny_sizes());
        assert_eq!(rows[0].label, "OpenBLAS-8x6");
        for r in &rows[1..] {
            assert!(
                rows[0].peak_serial >= r.peak_serial,
                "8x6 must lead serial peak: {} vs {} ({})",
                rows[0].peak_serial,
                r.peak_serial,
                r.label
            );
        }
    }

    #[test]
    fn figure14_scales_with_threads() {
        let mut est = Estimator::new();
        let curves = figure14(&mut est, &[512]);
        assert_eq!(curves.len(), 4);
        let peaks: Vec<f64> = curves.iter().map(Curve::peak_gflops).collect();
        assert!(peaks[1] > peaks[0] * 1.6, "2 threads ~2x: {peaks:?}");
        assert!(peaks[3] > peaks[2] * 1.5, "8 threads above 4: {peaks:?}");
    }

    #[test]
    fn table6_our_blocks_win_parallel() {
        let mut est = Estimator::new();
        let rows = table6(&mut est, &tiny_sizes());
        let ours = rows
            .iter()
            .find(|r| r.ours && r.setting.starts_with("Parallel"))
            .unwrap();
        // the mc=56 parallel rows overflow the shared L2 (paper: 80.4%
        // vs 85.3% peak); ours must beat both of them
        for r in rows
            .iter()
            .filter(|r| r.setting.starts_with("Parallel") && r.blocks.contains("x56x"))
        {
            assert!(
                ours.peak >= r.peak,
                "analytic {} ({}) must beat {} ({})",
                ours.blocks,
                ours.peak,
                r.blocks,
                r.peak
            );
        }
    }

    #[test]
    fn l1_study_shape() {
        let mut est = Estimator::new();
        let rows = l1_study(&mut est, &[512]);
        assert_eq!(rows.len(), 6);
        // 8x6 serial has fewer loads than 4x4 serial at the same n
        let l86 = rows
            .iter()
            .find(|r| r.label.contains("8x6") && r.threads == 1)
            .unwrap();
        let l44 = rows
            .iter()
            .find(|r| r.label.contains("4x4") && r.threads == 1)
            .unwrap();
        assert!(l86.points[0].1 < l44.points[0].1);
    }
}
