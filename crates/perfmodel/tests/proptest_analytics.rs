//! Property tests of the analytic machinery: for arbitrary machine
//! geometries the solvers must produce blockings that satisfy their own
//! constraints, rotations must stay valid permutations with correct
//! windows, and the γ expressions must respect their dominance
//! relations.

use perfmodel::arch::{CacheLevel, MachineDesc};
use perfmodel::cacheblock::solve_blocking;
use perfmodel::ratio::{gamma_gebp, gamma_gess, gamma_register};
use perfmodel::regblock::{optimize_register_block, register_constraints_ok};
use perfmodel::rotation::{optimal_rotation, KernelShape, RotationScheme};
use perfmodel::schedule::{schedule_kernel, ScheduleOptions};
use proptest::prelude::*;

fn machine_strategy() -> impl Strategy<Value = MachineDesc> {
    (
        prop::sample::select(vec![16usize * 1024, 32 * 1024, 64 * 1024]),
        prop::sample::select(vec![2usize, 4, 8]),
        prop::sample::select(vec![128usize * 1024, 256 * 1024, 512 * 1024]),
        prop::sample::select(vec![8usize, 16]),
        prop::sample::select(vec![4usize, 8, 16]),
    )
        .prop_map(|(l1, a1, l2, a2, a3)| {
            let mut m = MachineDesc::xgene();
            m.l1 = CacheLevel {
                size: l1,
                assoc: a1,
                line: 64,
            };
            m.l2 = CacheLevel {
                size: l2,
                assoc: a2,
                line: 64,
            };
            m.l3 = CacheLevel {
                size: 8 * 1024 * 1024,
                assoc: a3,
                line: 64,
            };
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the geometry, a solved blocking satisfies the paper's
    /// way-partition constraints (eqs. 15, 17-20) at every level.
    #[test]
    fn solved_blockings_satisfy_their_constraints(
        m in machine_strategy(),
        mr in prop::sample::select(vec![4usize, 6, 8]),
        nr in prop::sample::select(vec![4usize, 6, 8]),
        threads in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let Ok(b) = solve_blocking(mr, nr, threads, &m) else {
            // tiny/odd geometries may be infeasible; that is a valid answer
            return Ok(());
        };
        let es = m.element_bytes;
        let sharers = m.l2_sharers(threads);
        prop_assert!(b.kc * nr * es <= m.l1.way_bytes(m.l1.assoc - b.k1));
        prop_assert!((mr * nr + 2 * mr) * es <= m.l1.way_bytes(b.k1));
        prop_assert!(sharers * b.mc * b.kc * es <= m.l2.way_bytes(m.l2.assoc - b.k2));
        prop_assert!(sharers * b.kc * nr * es <= m.l2.way_bytes(b.k2));
        prop_assert!(b.kc * b.nc * es <= m.l3.way_bytes(m.l3.assoc - b.k3));
        prop_assert!(threads * b.mc * b.kc * es <= m.l3.way_bytes(b.k3));
        prop_assert_eq!(b.mc % mr, 0);
        prop_assert!(b.k1 < m.l1.assoc && b.k2 < m.l2.assoc && b.k3 < m.l3.assoc);
    }

    /// The register-block optimizer's result is always feasible and no
    /// feasible even block beats it.
    #[test]
    fn register_optimum_is_feasible_and_maximal(
        nf in prop::sample::select(vec![16usize, 32, 64]),
    ) {
        let mut m = MachineDesc::xgene();
        m.nf = nf;
        let best = optimize_register_block(&m);
        prop_assert!(register_constraints_ok(best.mr, best.nr, best.nrf, &m));
        for mr in (2usize..=24).step_by(2) {
            for nr in (2usize..=24).step_by(2) {
                let feasible = (0..=(mr + nr) * m.element_bytes / m.vreg_bytes)
                    .any(|nrf| register_constraints_ok(mr, nr, nrf, &m));
                if feasible {
                    prop_assert!(
                        gamma_register(mr, nr) <= best.gamma + 1e-9,
                        "{mr}x{nr} beats the optimizer at nf={nf}"
                    );
                }
            }
        }
    }

    /// γ dominance: register ≥ GESS ≥ GEBP for any positive blocking.
    #[test]
    fn gamma_dominance(
        mr in 2usize..16,
        nr in 2usize..16,
        kc in 1usize..2048,
        mc in 1usize..512,
    ) {
        let g_reg = gamma_register(mr, nr);
        let g_gess = gamma_gess(mr, nr, kc);
        let g_gebp = gamma_gebp(mr, nr, kc, mc);
        prop_assert!(g_reg >= g_gess && g_gess >= g_gebp);
        prop_assert!(g_gebp > 0.0);
    }

    /// Any single-cycle rotation over any even kernel shape yields a
    /// valid scheme whose derived schedule passes symbolic validation.
    #[test]
    fn rotations_schedule_validly(
        half_mr in 1usize..5,
        half_nr in 1usize..4,
        spare in 1usize..3,
    ) {
        let shape = KernelShape {
            mr: 2 * half_mr,
            nr: 2 * half_nr,
        };
        let pool = shape.n_values() + spare;
        prop_assume!(pool <= 9);
        let scheme = optimal_rotation(shape, pool);
        prop_assert_eq!(scheme.period(), pool);
        let sched = schedule_kernel(&scheme, &ScheduleOptions::default());
        prop_assert!(sched.validate(&scheme).is_ok());
        // rotation never loses to the identity scheme
        let id = RotationScheme::identity(shape, pool);
        prop_assert!(scheme.min_reuse_distance() >= id.min_reuse_distance());
    }

    /// Ping-pong double buffering is valid whenever it fits and always
    /// schedules without clobbering.
    #[test]
    fn ping_pong_schedules_validly(
        half_mr in 1usize..5,
        half_nr in 1usize..4,
    ) {
        let shape = KernelShape {
            mr: 2 * half_mr,
            nr: 2 * half_nr,
        };
        let scheme = RotationScheme::ping_pong(shape);
        prop_assert_eq!(scheme.period(), 2);
        let sched = schedule_kernel(&scheme, &ScheduleOptions::default());
        prop_assert!(sched.validate(&scheme).is_ok());
    }
}
