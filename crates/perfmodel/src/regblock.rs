//! Section IV-A: choosing the register block size `mr × nr`.
//!
//! The optimization problem (equations (8)–(11)):
//!
//! ```text
//! maximize   γ = 2 / (1/nr + 1/mr)                         (8)
//! subject to (mr·nr + 2·mr + 2·nr) · element ≤ (nf + nrf) · pf   (9)
//!            0 ≤ nrf · pf ≤ (mr + nr) · element             (10)
//!            mr = 2i, nr = 2j                               (11)
//! ```
//!
//! Constraint (9) counts the register demand of one rank-1 update with
//! double buffering: `mr·nr` C elements pinned in registers, plus *two*
//! `mr×1` A sub-slivers and *two* `1×nr` B sub-slivers (current + next),
//! of which `nrf` registers' worth can be saved by reusing registers
//! across consecutive iterations (software register rotation). Constraint
//! (10) says at most one full set of A+B values can be reused. Constraint
//! (11) keeps `mr`, `nr` multiples of the 2-lane vector width.
//!
//! On the paper's machine (`nf = 32`, `pf = 16`, `element = 8`) the optimum
//! is `γ = 48/7 ≈ 6.857` at `nrf = 6` with `mr×nr ∈ {8×6, 6×8}`; `8×6` is
//! preferred because `mr · element = 64` bytes = exactly one cache line,
//! which makes prefetching A convenient (Section IV-B).

use crate::arch::MachineDesc;
use crate::ratio::gamma_register;

/// Result of the register-block optimization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegisterBlockChoice {
    /// Rows of the register block (elements of A per rank-1 update).
    pub mr: usize,
    /// Columns of the register block (elements of B per rank-1 update).
    pub nr: usize,
    /// Number of floating-point registers reused between consecutive
    /// iterations by register rotation.
    pub nrf: usize,
    /// The achieved compute-to-memory access ratio (equation (8)).
    pub gamma: f64,
}

/// Check constraints (9)–(11) for a candidate `(mr, nr, nrf)`.
///
/// Constraint (11) generalizes the paper's "multiples of 2" to multiples
/// of the vector lane count (`pf / element`): 2 lanes for f64 as in the
/// paper, 4 lanes when the same analysis is applied to single precision.
#[must_use]
pub fn register_constraints_ok(mr: usize, nr: usize, nrf: usize, m: &MachineDesc) -> bool {
    let es = m.element_bytes;
    let pf = m.vreg_bytes;
    let lanes = pf / es;
    let eq9 = (mr * nr + 2 * mr + 2 * nr) * es <= (m.nf + nrf) * pf;
    let eq10 = nrf * pf <= (mr + nr) * es;
    let eq11 = mr.is_multiple_of(lanes) && nr.is_multiple_of(lanes) && mr > 0 && nr > 0;
    eq9 && eq10 && eq11
}

/// Solve (8)–(11): the best register block for machine `m`.
///
/// Ties on γ are broken by (a) smallest `nrf` (less rotation state), then
/// (b) `mr ≥ nr` (so an A sub-sliver is a whole number of cache lines,
/// which the paper exploits for prefetching).
///
/// ```
/// use perfmodel::{regblock::optimize_register_block, MachineDesc};
/// let best = optimize_register_block(&MachineDesc::xgene());
/// assert_eq!((best.mr, best.nr, best.nrf), (8, 6, 6)); // paper Fig. 5
/// assert!((best.gamma - 6.857).abs() < 1e-3);
/// ```
#[must_use]
pub fn optimize_register_block(m: &MachineDesc) -> RegisterBlockChoice {
    let mut best: Option<RegisterBlockChoice> = None;
    let lanes = (m.vreg_bytes / m.element_bytes).max(1);
    let max_dim = 2 * m.nf; // generous upper bound; constraint (9) prunes
    for mr in (lanes..=max_dim).step_by(lanes) {
        for nr in (lanes..=max_dim).step_by(lanes) {
            // smallest nrf that satisfies (9), if any within (10)
            let nrf_cap = (mr + nr) * m.element_bytes / m.vreg_bytes;
            let Some(nrf) = (0..=nrf_cap).find(|&nrf| register_constraints_ok(mr, nr, nrf, m))
            else {
                continue;
            };
            let cand = RegisterBlockChoice {
                mr,
                nr,
                nrf,
                gamma: gamma_register(mr, nr),
            };
            let better = match &best {
                None => true,
                Some(b) => {
                    cand.gamma > b.gamma + 1e-12
                        || ((cand.gamma - b.gamma).abs() <= 1e-12
                            && (cand.nrf < b.nrf
                                || (cand.nrf == b.nrf && cand.mr >= cand.nr && b.mr < b.nr)))
                }
            };
            if better {
                best = Some(cand);
            }
        }
    }
    best.expect("register file too small for any 2x2 block")
}

/// One point of the Figure 5 surface.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SurfacePoint {
    /// X axis: `mr`.
    pub mr: usize,
    /// Y axis: `nrf`.
    pub nrf: usize,
    /// Z axis: the best γ achievable at this `(mr, nrf)` over all feasible
    /// even `nr` (0 if infeasible).
    pub gamma: f64,
    /// The `nr` attaining it (0 if infeasible).
    pub nr: usize,
}

/// Compute the Figure 5 surface: best γ as a function of `mr` and `nrf`.
#[must_use]
pub fn gamma_surface(m: &MachineDesc, mr_max: usize, nrf_max: usize) -> Vec<SurfacePoint> {
    let mut out = Vec::new();
    let lanes = (m.vreg_bytes / m.element_bytes).max(1);
    for mr in (lanes..=mr_max).step_by(lanes) {
        for nrf in 0..=nrf_max {
            let mut best_g = 0.0;
            let mut best_nr = 0;
            for nr in (lanes..=2 * m.nf).step_by(lanes) {
                if register_constraints_ok(mr, nr, nrf, m) {
                    let g = gamma_register(mr, nr);
                    if g > best_g {
                        best_g = g;
                        best_nr = nr;
                    }
                }
            }
            out.push(SurfacePoint {
                mr,
                nrf,
                gamma: best_g,
                nr: best_nr,
            });
        }
    }
    out
}

/// Register demand of a register block, in vector registers: `mr·nr/2` for
/// C plus `(mr+nr)/2` for the current A/B sub-slivers plus the same again
/// for the prefetched next sub-slivers minus the `nrf` rotated registers.
#[must_use]
pub fn vector_registers_needed(mr: usize, nr: usize, nrf: usize, m: &MachineDesc) -> usize {
    let lanes = m.vreg_bytes / m.element_bytes;
    let c_regs = (mr * nr).div_ceil(lanes);
    let ab_regs = (mr + nr).div_ceil(lanes);
    c_regs + 2 * ab_regs - nrf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_optimum_is_8x6_nrf6() {
        let m = MachineDesc::xgene();
        let c = optimize_register_block(&m);
        assert_eq!((c.mr, c.nr, c.nrf), (8, 6, 6));
        assert!((c.gamma - 48.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn paper_examples_feasible() {
        let m = MachineDesc::xgene();
        assert!(register_constraints_ok(8, 6, 6, &m));
        assert!(register_constraints_ok(6, 8, 6, &m));
        assert!(register_constraints_ok(8, 4, 4, &m));
        assert!(register_constraints_ok(4, 4, 0, &m));
    }

    #[test]
    fn infeasible_blocks_rejected() {
        let m = MachineDesc::xgene();
        // 8x8 needs 64 + 32 = 96 element-slots > 64 + 2*8 even at max nrf.
        let nrf_cap = (8 + 8) * m.element_bytes / m.vreg_bytes;
        for nrf in 0..=nrf_cap {
            assert!(!register_constraints_ok(8, 8, nrf, &m));
        }
        // odd blocks violate (11)
        assert!(!register_constraints_ok(5, 5, 0, &m));
        assert!(!register_constraints_ok(8, 5, 0, &m));
    }

    #[test]
    fn constraint_10_enforced() {
        let m = MachineDesc::xgene();
        // nrf beyond (mr+nr)*es/pf = 7 must be rejected for 8x6.
        assert!(!register_constraints_ok(8, 6, 8, &m));
        assert!(register_constraints_ok(8, 6, 7, &m));
    }

    #[test]
    fn surface_peak_matches_figure5() {
        let m = MachineDesc::xgene();
        let surface = gamma_surface(&m, 16, 8);
        let max_gamma = surface.iter().map(|p| p.gamma).fold(0.0, f64::max);
        // Figure 5 annotates the peak: X=8 (mr), Y=6 (nrf), Z=6.857.
        assert!((max_gamma - 6.857).abs() < 1e-3);
        let at_8_6 = surface
            .iter()
            .find(|p| p.mr == 8 && p.nrf == 6)
            .expect("surface covers (8, 6)");
        assert_eq!(at_8_6.nr, 6);
        assert!(
            (at_8_6.gamma - max_gamma).abs() < 1e-12,
            "(8,6) attains the peak"
        );
        // No smaller nrf reaches the peak at mr = 8.
        for p in surface.iter().filter(|p| p.mr == 8 && p.nrf < 6) {
            assert!(p.gamma < max_gamma - 1e-9);
        }
    }

    #[test]
    fn surface_bounded_by_global_optimum() {
        // No surface point exceeds the solved optimum, and feasible points
        // are strictly positive while infeasible corners report 0.
        let m = MachineDesc::xgene();
        let opt = optimize_register_block(&m);
        let surface = gamma_surface(&m, 16, 8);
        for p in &surface {
            assert!(p.gamma <= opt.gamma + 1e-12);
            assert_eq!(p.gamma > 0.0, p.nr > 0);
        }
        // mr = 16 with nrf = 0 cannot satisfy (9) for any even nr:
        // 16·nr + 32 + 2·nr <= 64 would need nr <= 1.8.
        let corner = surface.iter().find(|p| p.mr == 16 && p.nrf == 0).unwrap();
        assert_eq!(corner.gamma, 0.0);
    }

    #[test]
    fn single_precision_analysis() {
        // the same machinery applied to f32 (4 lanes per q-register):
        // the optimum grows to 12x8 with gamma 9.6
        let mut m = MachineDesc::xgene();
        m.element_bytes = 4;
        let c = optimize_register_block(&m);
        assert_eq!((c.mr, c.nr), (12, 8));
        assert!((c.gamma - 9.6).abs() < 1e-9);
        // odd-lane blocks rejected
        assert!(!register_constraints_ok(10, 8, 0, &m));
        assert!(!register_constraints_ok(12, 6, 0, &m));
    }

    #[test]
    fn register_demand_fits_register_file() {
        let m = MachineDesc::xgene();
        // 8x6 with nrf=6: 24 C regs + 2*7 A/B regs - 6 reused = 32 = nf.
        assert_eq!(vector_registers_needed(8, 6, 6, &m), 32);
        assert!(vector_registers_needed(8, 4, 4, &m) <= m.nf);
        assert!(vector_registers_needed(4, 4, 0, &m) <= m.nf);
    }
}
