//! Machine description for the analytic model.
//!
//! The paper's platform (Section II-A, Figure 1) is an eight-core 64-bit
//! ARMv8 SoC: per-core 32 KB 4-way L1D, 256 KB 16-way L2 shared by the two
//! cores of a *dual-core module*, 8 MB 16-way L3 shared by all four modules,
//! one NEON FMA pipeline per core at 2.4 GHz giving 4.8 Gflops/core peak
//! (i.e. one 128-bit `fmla v.2d` — 4 flops — every two cycles).

/// One level of a set-associative cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheLevel {
    /// Total capacity in bytes.
    pub size: usize,
    /// Number of ways (set associativity).
    pub assoc: usize,
    /// Cache-line size in bytes.
    pub line: usize,
}

impl CacheLevel {
    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.size / (self.assoc * self.line)
    }

    /// Bytes held by `k` ways across all sets — the capacity available to a
    /// data structure confined to a `k`-way partition of the cache, as used
    /// by the paper's blocking constraints (equations (15), (17), (18)).
    #[must_use]
    pub fn way_bytes(&self, k: usize) -> usize {
        k * self.size / self.assoc
    }
}

/// The machine parameters consumed by the analytic model.
#[derive(Clone, Debug)]
pub struct MachineDesc {
    /// Number of architectural floating-point/NEON registers (`nf`).
    pub nf: usize,
    /// Size of one floating-point register in bytes (`pf`); 16 for NEON q-regs.
    pub vreg_bytes: usize,
    /// Size of one matrix element in bytes; 8 for double precision.
    pub element_bytes: usize,
    /// L1 data cache (per core).
    pub l1: CacheLevel,
    /// L2 cache (shared by the cores of one module).
    pub l2: CacheLevel,
    /// L3 cache (shared by all cores).
    pub l3: CacheLevel,
    /// Total number of cores.
    pub cores: usize,
    /// Cores per dual-core module (sharing one L2).
    pub cores_per_module: usize,
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Peak double-precision flops per cycle per core (2.0 on this machine:
    /// one 2-lane FMA — 4 flops — every 2 cycles).
    pub flops_per_cycle: f64,
}

impl MachineDesc {
    /// The paper's evaluation platform (Table II / Section II-A).
    #[must_use]
    pub fn xgene() -> Self {
        MachineDesc {
            nf: 32,
            vreg_bytes: 16,
            element_bytes: 8,
            l1: CacheLevel {
                size: 32 * 1024,
                assoc: 4,
                line: 64,
            },
            l2: CacheLevel {
                size: 256 * 1024,
                assoc: 16,
                line: 64,
            },
            l3: CacheLevel {
                size: 8 * 1024 * 1024,
                assoc: 16,
                line: 64,
            },
            cores: 8,
            cores_per_module: 2,
            freq_ghz: 2.4,
            flops_per_cycle: 2.0,
        }
    }

    /// Peak double-precision Gflops of one core.
    #[must_use]
    pub fn peak_gflops_per_core(&self) -> f64 {
        self.freq_ghz * self.flops_per_cycle
    }

    /// Peak double-precision Gflops of `threads` cores.
    #[must_use]
    pub fn peak_gflops(&self, threads: usize) -> f64 {
        self.peak_gflops_per_core() * threads as f64
    }

    /// Number of dual-core modules.
    #[must_use]
    pub fn modules(&self) -> usize {
        self.cores / self.cores_per_module
    }

    /// How many of `threads` threads end up sharing one L2 cache, assuming
    /// the scheduler spreads threads across modules first (Section V:
    /// "in the case of 2 and 4 threads, different threads always run on
    /// different modules").
    #[must_use]
    pub fn l2_sharers(&self, threads: usize) -> usize {
        let modules = self.modules();
        if threads <= modules {
            1
        } else {
            threads.div_ceil(modules).min(self.cores_per_module)
        }
    }

    /// Doubles per cache line (8 on this machine), the natural granularity
    /// for `nc` rounding.
    #[must_use]
    pub fn doubles_per_line(&self) -> usize {
        self.l1.line / self.element_bytes
    }
}

impl Default for MachineDesc {
    fn default() -> Self {
        Self::xgene()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xgene_geometry_matches_paper() {
        let m = MachineDesc::xgene();
        assert_eq!(m.l1.sets(), 128);
        assert_eq!(m.l2.sets(), 256);
        assert_eq!(m.l3.sets(), 8192);
        assert_eq!(m.modules(), 4);
        assert!((m.peak_gflops_per_core() - 4.8).abs() < 1e-12);
        assert!((m.peak_gflops(8) - 38.4).abs() < 1e-12);
    }

    #[test]
    fn way_bytes_partitions() {
        let m = MachineDesc::xgene();
        // 3 of 4 ways of the 32 KB L1 = 24 KB, the share the paper gives to
        // the kc x nr sliver of B ("fills 3/4 of the L1 data cache").
        assert_eq!(m.l1.way_bytes(3), 24 * 1024);
        assert_eq!(m.l1.way_bytes(m.l1.assoc), m.l1.size);
    }

    #[test]
    fn l2_sharers_by_thread_count() {
        let m = MachineDesc::xgene();
        assert_eq!(m.l2_sharers(1), 1);
        assert_eq!(m.l2_sharers(2), 1); // spread over modules
        assert_eq!(m.l2_sharers(4), 1); // one per module
        assert_eq!(m.l2_sharers(8), 2); // both cores of every module busy
    }

    #[test]
    fn doubles_per_line_is_eight() {
        assert_eq!(MachineDesc::xgene().doubles_per_line(), 8);
    }
}
