//! Section IV-B/C: analytic selection of the cache block sizes
//! `kc` (L1), `mc` (L2) and `nc` (L3), honouring set associativity and the
//! LRU replacement policy, for both serial and multi-threaded execution.
//!
//! The constraint pattern, per level (following \[14\] as the paper does), is
//! a *way partition*: `k` of the `assoc` ways are reserved for the streaming
//! occupant, the remaining `assoc − k` ways for the resident occupant.
//!
//! L1 (equation (15)), resident = `kc×nr` sliver of B, streaming = two
//! columns of an A sliver plus one `mr×nr` C sub-block:
//!
//! ```text
//! kc·nr·es           ≤ (assoc1 − k1)·L1/assoc1
//! (mr·nr + 2·mr)·es  ≤ k1·L1/assoc1
//! ```
//!
//! L2 (equation (17); parallel form (19) doubles both occupants when two
//! threads of one module share the L2), resident = `mc×kc` block of A,
//! streaming = one `kc×nr` sliver of B:
//!
//! ```text
//! s·mc·kc·es  ≤ (assoc2 − k2)·L2/assoc2      s = threads sharing the L2
//! s·kc·nr·es  ≤ k2·L2/assoc2
//! ```
//!
//! L3 (equation (18); parallel form (20)), resident = `kc×nc` panel of B
//! (shared by all threads), streaming = the per-thread `mc×kc` A blocks:
//!
//! ```text
//! kc·nc·es    ≤ (assoc3 − k3)·L3/assoc3
//! t·mc·kc·es  ≤ k3·L3/assoc3                 t = number of threads
//! ```
//!
//! `k1` is chosen as small as possible (maximizing `kc`); `k2`/`k3` are
//! chosen to maximize `mc` (a multiple of `mr`) and `nc` (a multiple of one
//! cache line of doubles), taking the largest feasible `k` when several
//! give the same rounded block — the paper reports `k2 = 4` for the
//! eight-thread 8×6 configuration where both `k2 = 3` and `k2 = 4` yield
//! `mc = 24`.
//!
//! On the paper's machine this reproduces Table III exactly:
//!
//! | kernel | 1 thread            | 8 threads           |
//! |--------|---------------------|---------------------|
//! | 8×6    | 512 × 56 × 1920     | 512 × 24 × 1792     |
//! | 8×4    | 768 × 32 × 1280     | 768 × 16 × 1192     |
//! | 4×4    | 768 × 32 × 1280     | 768 × 16 × 1192     |

use crate::arch::MachineDesc;

/// A complete blocking configuration for the layered GEBP algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockSizes {
    /// Register-block rows.
    pub mr: usize,
    /// Register-block columns.
    pub nr: usize,
    /// L1 block: depth of the rank-`kc` update.
    pub kc: usize,
    /// L2 block: rows of the packed A block.
    pub mc: usize,
    /// L3 block: columns of the packed B panel.
    pub nc: usize,
    /// Ways of L1 reserved for the streaming occupant.
    pub k1: usize,
    /// Ways of L2 reserved for the streaming occupant.
    pub k2: usize,
    /// Ways of L3 reserved for the streaming occupant.
    pub k3: usize,
}

impl BlockSizes {
    /// A hand-specified configuration (for sensitivity studies like the
    /// paper's Table VI); the `k` fields are set to 0 (not derived).
    #[must_use]
    pub fn custom(mr: usize, nr: usize, kc: usize, mc: usize, nc: usize) -> Self {
        BlockSizes {
            mr,
            nr,
            kc,
            mc,
            nc,
            k1: 0,
            k2: 0,
            k3: 0,
        }
    }

    /// Render as the paper's `mr×nr×kc×mc×nc` notation.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}x{}x{}x{}x{}",
            self.mr, self.nr, self.kc, self.mc, self.nc
        )
    }
}

/// Error from the blocking solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockingError {
    /// No way partition of L1 can hold both occupants.
    L1TooSmall,
    /// No way partition of L2 can hold both occupants.
    L2TooSmall,
    /// No way partition of L3 can hold both occupants.
    L3TooSmall,
}

impl core::fmt::Display for BlockingError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BlockingError::L1TooSmall => write!(f, "L1 cannot hold the register working set"),
            BlockingError::L2TooSmall => write!(f, "L2 cannot hold the B sliver partition"),
            BlockingError::L3TooSmall => write!(f, "L3 cannot hold the A block partition"),
        }
    }
}

impl std::error::Error for BlockingError {}

/// Solve equation (15): `(kc, k1)` for a given register block.
///
/// `k1` is the smallest way count whose partition holds the streaming
/// occupant (`mr×nr` C sub-block + two `mr×1` A columns); `kc` is then the
/// largest depth whose B sliver fits in the remaining ways.
pub fn solve_kc(mr: usize, nr: usize, m: &MachineDesc) -> Result<(usize, usize), BlockingError> {
    let es = m.element_bytes;
    let stream_bytes = (mr * nr + 2 * mr) * es;
    let k1 = (1..m.l1.assoc)
        .find(|&k| stream_bytes <= m.l1.way_bytes(k))
        .ok_or(BlockingError::L1TooSmall)?;
    let kc = m.l1.way_bytes(m.l1.assoc - k1) / (nr * es);
    if kc == 0 {
        return Err(BlockingError::L1TooSmall);
    }
    Ok((kc, k1))
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// Solve equation (17) (serial) / (19) (parallel): `(mc, k2)`.
///
/// `sharers` is the number of threads whose working sets coexist in one L2
/// (1 serial; 2 when both cores of a module are busy).
pub fn solve_mc(
    mr: usize,
    nr: usize,
    kc: usize,
    sharers: usize,
    m: &MachineDesc,
) -> Result<(usize, usize), BlockingError> {
    let es = m.element_bytes;
    let sliver_bytes = sharers * kc * nr * es;
    let k2_min = (1..m.l2.assoc)
        .find(|&k| sliver_bytes <= m.l2.way_bytes(k))
        .ok_or(BlockingError::L2TooSmall)?;
    // mc is kept a multiple of mr (whole slivers) *and*, when possible, of
    // one cache line of elements (packed slivers stay line-aligned): paper
    // Table III gives mc = 32, not 36, for the serial 4x4 kernel. When the
    // line-aligned rounding would leave no block at all (tight caches or
    // small elements), fall back to whole slivers only.
    let line = m.doubles_per_line();
    let mc_with_unit = |k2: usize, unit: usize| -> usize {
        let cap = m.l2.way_bytes(m.l2.assoc - k2);
        let raw = cap / (sharers * kc * es);
        raw / unit * unit
    };
    let unit = if mc_with_unit(k2_min, lcm(mr, line)) > 0 {
        lcm(mr, line)
    } else {
        mr
    };
    let mc_at = |k2: usize| mc_with_unit(k2, unit);
    let best_mc = mc_at(k2_min);
    if best_mc == 0 {
        return Err(BlockingError::L2TooSmall);
    }
    // Largest k2 that still yields the same (maximal) mc: extra ways for
    // the streaming sliver cost nothing and add conflict headroom.
    let k2 = (k2_min..m.l2.assoc)
        .take_while(|&k| mc_at(k) == best_mc)
        .last()
        .unwrap_or(k2_min);
    Ok((best_mc, k2))
}

/// Solve equation (18) (serial) / (20) (parallel): `(nc, k3)`.
///
/// `a_blocks` is the number of per-thread `mc×kc` A blocks resident in L3
/// alongside the shared B panel (1 serial; `threads` in parallel).
pub fn solve_nc(
    mr: usize,
    kc: usize,
    mc: usize,
    a_blocks: usize,
    m: &MachineDesc,
) -> Result<(usize, usize), BlockingError> {
    let _ = mr;
    let es = m.element_bytes;
    let blocks_bytes = a_blocks * mc * kc * es;
    let k3_min = (1..m.l3.assoc)
        .find(|&k| blocks_bytes <= m.l3.way_bytes(k))
        .ok_or(BlockingError::L3TooSmall)?;
    let line_doubles = m.doubles_per_line();
    let nc_at = |k3: usize| -> usize {
        let cap = m.l3.way_bytes(m.l3.assoc - k3);
        let raw = cap / (kc * es);
        raw / line_doubles * line_doubles
    };
    let best_nc = nc_at(k3_min);
    if best_nc == 0 {
        return Err(BlockingError::L3TooSmall);
    }
    let k3 = (k3_min..m.l3.assoc)
        .take_while(|&k| nc_at(k) == best_nc)
        .last()
        .unwrap_or(k3_min);
    Ok((best_nc, k3))
}

/// Solve the full blocking for `threads` threads on machine `m`
/// (Section IV-B for `threads = 1`, Section IV-C otherwise).
///
/// ```
/// use perfmodel::{cacheblock::solve_blocking, MachineDesc};
/// let m = MachineDesc::xgene();
/// let serial = solve_blocking(8, 6, 1, &m).unwrap();
/// assert_eq!(serial.label(), "8x6x512x56x1920"); // paper Table III
/// let parallel = solve_blocking(8, 6, 8, &m).unwrap();
/// assert_eq!(parallel.label(), "8x6x512x24x1792");
/// ```
pub fn solve_blocking(
    mr: usize,
    nr: usize,
    threads: usize,
    m: &MachineDesc,
) -> Result<BlockSizes, BlockingError> {
    assert!(
        threads >= 1 && threads <= m.cores,
        "thread count out of range"
    );
    let (kc, k1) = solve_kc(mr, nr, m)?;
    let sharers = m.l2_sharers(threads);
    let (mc, k2) = solve_mc(mr, nr, kc, sharers, m)?;
    let (nc, k3) = solve_nc(mr, kc, mc, threads, m)?;
    Ok(BlockSizes {
        mr,
        nr,
        kc,
        mc,
        nc,
        k1,
        k2,
        k3,
    })
}

/// The conventional "half cache" heuristic from Goto & van de Geijn \[5\],
/// which the paper contrasts in Table VI: a `kc×nr` sliver of B fills about
/// half the L1 and an `mc×kc` block of A about half the L2, ignoring
/// associativity. The paper uses `320×96×1536` as this baseline for 8×6.
#[must_use]
pub fn goto_heuristic_blocking(mr: usize, nr: usize, m: &MachineDesc) -> BlockSizes {
    let es = m.element_bytes;
    // kc: half of L1 for the B sliver, rounded down to a multiple of 64.
    let kc = (m.l1.size / 2 / (nr * es)) / 64 * 64;
    // mc: fill most of L2 (15/16) with the A block, ignoring the way
    // partition; this reproduces the paper's published baseline 320x96x1536.
    let mc = (m.l2.size * 15 / 16 / (kc * es)) / mr * mr;
    // nc: half of L3, rounded down to a multiple of 512 columns.
    let nc = (m.l3.size / 2 / (kc * es)) / 512 * 512;
    BlockSizes::custom(mr, nr, kc, mc, nc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineDesc {
        MachineDesc::xgene()
    }

    #[test]
    fn table3_8x6_serial() {
        let b = solve_blocking(8, 6, 1, &m()).unwrap();
        assert_eq!((b.kc, b.mc, b.nc), (512, 56, 1920));
        assert_eq!((b.k1, b.k2, b.k3), (1, 2, 1));
    }

    #[test]
    fn table3_8x6_parallel() {
        let b = solve_blocking(8, 6, 8, &m()).unwrap();
        assert_eq!((b.kc, b.mc, b.nc), (512, 24, 1792));
        assert_eq!((b.k1, b.k2, b.k3), (1, 4, 2));
    }

    #[test]
    fn table3_8x4() {
        let s = solve_blocking(8, 4, 1, &m()).unwrap();
        assert_eq!((s.kc, s.mc, s.nc), (768, 32, 1280));
        let p = solve_blocking(8, 4, 8, &m()).unwrap();
        assert_eq!((p.kc, p.mc, p.nc), (768, 16, 1192));
    }

    #[test]
    fn table3_4x4() {
        let s = solve_blocking(4, 4, 1, &m()).unwrap();
        assert_eq!((s.kc, s.mc, s.nc), (768, 32, 1280));
        let p = solve_blocking(4, 4, 8, &m()).unwrap();
        assert_eq!((p.kc, p.mc, p.nc), (768, 16, 1192));
    }

    #[test]
    fn figure14_intermediate_thread_counts() {
        // Fig. 14 legend: 2 threads -> 8x6x512x56x1920,
        //                 4 threads -> 8x6x512x56x1792.
        let b2 = solve_blocking(8, 6, 2, &m()).unwrap();
        assert_eq!((b2.kc, b2.mc, b2.nc), (512, 56, 1920));
        let b4 = solve_blocking(8, 6, 4, &m()).unwrap();
        assert_eq!((b4.kc, b4.mc, b4.nc), (512, 56, 1792));
    }

    #[test]
    fn occupancy_fractions_match_paper_prose() {
        let mdesc = m();
        let b = solve_blocking(8, 6, 1, &mdesc).unwrap();
        let es = mdesc.element_bytes;
        // "a kc x nr sliver of B fills 3/4 of the L1 data cache"
        assert_eq!(b.kc * b.nr * es, mdesc.l1.size * 3 / 4);
        // "an mc x kc block of A fills 7/8 of the L2 cache"
        assert_eq!(b.mc * b.kc * es, mdesc.l2.size * 7 / 8);
        // "a kc x nc panel of B occupies 15/16 of the L3 cache"
        assert_eq!(b.kc * b.nc * es, mdesc.l3.size * 15 / 16);
    }

    #[test]
    fn resident_occupants_fit_their_partitions() {
        let mdesc = m();
        for (mr, nr) in [(8, 6), (8, 4), (4, 4)] {
            for threads in [1, 2, 4, 8] {
                let b = solve_blocking(mr, nr, threads, &mdesc).unwrap();
                let es = mdesc.element_bytes;
                let sharers = mdesc.l2_sharers(threads);
                // L1: B sliver in assoc1-k1 ways, stream set in k1 ways.
                assert!(b.kc * nr * es <= mdesc.l1.way_bytes(mdesc.l1.assoc - b.k1));
                assert!((mr * nr + 2 * mr) * es <= mdesc.l1.way_bytes(b.k1));
                // L2: A block(s) in assoc2-k2 ways, B sliver(s) in k2 ways.
                assert!(sharers * b.mc * b.kc * es <= mdesc.l2.way_bytes(mdesc.l2.assoc - b.k2));
                assert!(sharers * b.kc * nr * es <= mdesc.l2.way_bytes(b.k2));
                // L3: B panel in assoc3-k3 ways, A blocks in k3 ways.
                assert!(b.kc * b.nc * es <= mdesc.l3.way_bytes(mdesc.l3.assoc - b.k3));
                assert!(threads * b.mc * b.kc * es <= mdesc.l3.way_bytes(b.k3));
            }
        }
    }

    #[test]
    fn mc_is_multiple_of_mr_and_nc_of_line() {
        let mdesc = m();
        for (mr, nr) in [(8, 6), (8, 4), (4, 4), (2, 2), (6, 6)] {
            for threads in [1, 2, 4, 8] {
                let b = solve_blocking(mr, nr, threads, &mdesc).unwrap();
                assert_eq!(b.mc % mr, 0, "mc multiple of mr for {mr}x{nr}");
                assert_eq!(b.nc % mdesc.doubles_per_line(), 0);
                assert!(b.kc > 0 && b.mc > 0 && b.nc > 0);
            }
        }
    }

    #[test]
    fn more_threads_never_grow_blocks() {
        let mdesc = m();
        for (mr, nr) in [(8, 6), (8, 4), (4, 4)] {
            let mut last_mc = usize::MAX;
            let mut last_nc = usize::MAX;
            for threads in [1, 2, 4, 8] {
                let b = solve_blocking(mr, nr, threads, &mdesc).unwrap();
                assert!(b.mc <= last_mc);
                assert!(b.nc <= last_nc);
                last_mc = b.mc;
                last_nc = b.nc;
            }
        }
    }

    #[test]
    fn goto_heuristic_matches_table6_baseline() {
        let b = goto_heuristic_blocking(8, 6, &m());
        assert_eq!((b.kc, b.mc, b.nc), (320, 96, 1536));
    }

    #[test]
    fn label_formatting() {
        let b = solve_blocking(8, 6, 1, &m()).unwrap();
        assert_eq!(b.label(), "8x6x512x56x1920");
    }

    #[test]
    fn tiny_cache_errors_out() {
        let mut tiny = m();
        tiny.l1.size = 1024;
        tiny.l1.assoc = 2;
        // streaming occupant of an 8x6 kernel needs (48+16)*8 = 512 bytes
        // = exactly one way of a 1KB 2-way cache, leaving one way (512 B)
        // for B: kc = 512/(6*8) = 10 -> still ok; shrink further:
        tiny.l1.size = 256;
        assert_eq!(solve_kc(8, 6, &tiny), Err(BlockingError::L1TooSmall));
    }
}
