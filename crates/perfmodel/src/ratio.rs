//! Compute-to-memory access ratios `γ` for each layer of the GEBP kernel.
//!
//! Section IV derives, for each loop layer of Figure 2, the ratio of flops
//! performed to words moved, as a function of the block sizes:
//!
//! - register kernel (layer 7, eq. (7)/(8)):  `γ = 2 / (1/nr + 1/mr)`
//! - GESS/GEBS (layers 6/5, eq. (14)):        `γ = 2 / (2/nr + 1/mr + 2/kc)`
//! - GEBP (layer 4, eq. (16)):                `γ = 2 / (2/nr + 1/mr + 2/kc + 2/mc)`
//!
//! Each additional term is the amortized traffic of one more operand
//! stream; maximizing γ level by level is the paper's design procedure.

/// γ of the register kernel (equation (8)): 2·mr·nr flops per rank-1 update
/// against mr + nr words loaded from L1 to registers.
#[must_use]
pub fn gamma_register(mr: usize, nr: usize) -> f64 {
    assert!(mr > 0 && nr > 0);
    2.0 / (1.0 / nr as f64 + 1.0 / mr as f64)
}

/// γ of GESS / GEBS (equation (14)), accounting additionally for streaming
/// the A sliver from L2 to L1 and updating the C sub-block, amortized over
/// the `kc` dimension.
#[must_use]
pub fn gamma_gess(mr: usize, nr: usize, kc: usize) -> f64 {
    assert!(mr > 0 && nr > 0 && kc > 0);
    2.0 / (2.0 / nr as f64 + 1.0 / mr as f64 + 2.0 / kc as f64)
}

/// γ of GEBP (equation (16)), accounting additionally for streaming the B
/// panel from L3 through L2, amortized over the `mc` dimension.
#[must_use]
pub fn gamma_gebp(mr: usize, nr: usize, kc: usize, mc: usize) -> f64 {
    assert!(mr > 0 && nr > 0 && kc > 0 && mc > 0);
    2.0 / (2.0 / nr as f64 + 1.0 / mr as f64 + 2.0 / kc as f64 + 2.0 / mc as f64)
}

/// Exact word-traffic accounting for one GEBP invocation
/// (`mc×kc` block of A times `kc×nc` panel of B updating `mc×nc` of C),
/// the denominator the paper divides `2·mc·kc·nc` by above equation (16).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GebpTraffic {
    /// Words of A moved L2 → L1 (the block is re-read once per B sliver).
    pub a_l2_to_l1: f64,
    /// Words of A moved L1 → registers.
    pub a_l1_to_reg: f64,
    /// Words of B moved L1 → registers (each sliver re-read per A sliver).
    pub b_l1_to_reg: f64,
    /// Words of B moved L3 → L2 (panel streamed once).
    pub b_l3_to_l2: f64,
    /// Words of B moved L2 → L1 (panel streamed once).
    pub b_l2_to_l1: f64,
    /// Words of C moved between memory and registers (read + write).
    pub c_mem_reg: f64,
}

impl GebpTraffic {
    /// Build the traffic model for the given blocking.
    #[must_use]
    pub fn new(mr: usize, nr: usize, kc: usize, mc: usize, nc: usize) -> Self {
        let (mrf, nrf64, kcf, mcf, ncf) = (mr as f64, nr as f64, kc as f64, mc as f64, nc as f64);
        let b_slivers = (ncf / nrf64).ceil();
        let a_slivers = (mcf / mrf).ceil();
        GebpTraffic {
            a_l2_to_l1: mcf * kcf * b_slivers,
            a_l1_to_reg: mcf * kcf * b_slivers,
            b_l1_to_reg: kcf * ncf * a_slivers,
            b_l3_to_l2: kcf * ncf,
            b_l2_to_l1: kcf * ncf,
            c_mem_reg: 2.0 * mcf * ncf,
        }
    }

    /// Total words moved.
    #[must_use]
    pub fn total_words(&self) -> f64 {
        self.a_l2_to_l1
            + self.a_l1_to_reg
            + self.b_l1_to_reg
            + self.b_l3_to_l2
            + self.b_l2_to_l1
            + self.c_mem_reg
    }

    /// Flops of the GEBP invocation.
    #[must_use]
    pub fn flops(mc: usize, kc: usize, nc: usize) -> f64 {
        2.0 * mc as f64 * kc as f64 * nc as f64
    }

    /// Exact γ — converges to [`gamma_gebp`] for `mc`, `nc` that are exact
    /// multiples of `mr`, `nr`.
    #[must_use]
    pub fn gamma(mr: usize, nr: usize, kc: usize, mc: usize, nc: usize) -> f64 {
        Self::flops(mc, kc, nc) / Self::new(mr, nr, kc, mc, nc).total_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_gamma_matches_paper() {
        // Paper Section V-B: 8x6 -> 6.86, 8x4 -> 5.33, 4x4 -> 4, 5x5 -> 5.
        assert!((gamma_register(8, 6) - 48.0 / 7.0).abs() < 1e-12);
        assert!((gamma_register(8, 4) - 16.0 / 3.0).abs() < 1e-12);
        assert!((gamma_register(4, 4) - 4.0).abs() < 1e-12);
        assert!((gamma_register(5, 5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn register_gamma_symmetric() {
        assert_eq!(gamma_register(8, 6), gamma_register(6, 8));
    }

    #[test]
    fn gamma_decreases_layer_by_layer() {
        // Each layer adds traffic, so gamma must shrink: reg > GESS > GEBP.
        let (mr, nr, kc, mc) = (8, 6, 512, 56);
        let g_reg = gamma_register(mr, nr);
        let g_gess = gamma_gess(mr, nr, kc);
        let g_gebp = gamma_gebp(mr, nr, kc, mc);
        assert!(g_reg > g_gess && g_gess > g_gebp);
        // with the paper's blocking the cache layers cost less than half
        // the register-level ratio (kc and mc amortize the extra streams)
        assert!(g_gebp > 0.5 * g_reg, "gebp {g_gebp} vs reg {g_reg}");
    }

    #[test]
    fn gess_gamma_grows_with_kc() {
        let mut last = 0.0;
        for kc in [32, 64, 128, 256, 512, 1024] {
            let g = gamma_gess(8, 6, kc);
            assert!(g > last);
            last = g;
        }
    }

    #[test]
    fn gebp_gamma_grows_with_mc() {
        let mut last = 0.0;
        for mc in [8, 16, 24, 56, 96] {
            let g = gamma_gebp(8, 6, 512, mc);
            assert!(g > last);
            last = g;
        }
    }

    #[test]
    fn exact_traffic_matches_asymptotic_gamma() {
        // For blocks that divide evenly, the exact accounting approaches
        // eq. (16) as nc grows (the B L3->L2/L2->L1 streams amortize).
        let (mr, nr, kc, mc, nc) = (8, 6, 512, 56, 1920);
        let exact = GebpTraffic::gamma(mr, nr, kc, mc, nc);
        let asymptotic = gamma_gebp(mr, nr, kc, mc);
        assert!(
            (exact - asymptotic).abs() / asymptotic < 0.05,
            "exact {exact} vs asymptotic {asymptotic}"
        );
    }

    #[test]
    fn traffic_components_positive_and_sum() {
        let t = GebpTraffic::new(8, 6, 512, 56, 1920);
        let total = t.total_words();
        assert!(total > 0.0);
        let parts = t.a_l2_to_l1
            + t.a_l1_to_reg
            + t.b_l1_to_reg
            + t.b_l3_to_l2
            + t.b_l2_to_l1
            + t.c_mem_reg;
        assert_eq!(total, parts);
    }
}
