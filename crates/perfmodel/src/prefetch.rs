//! Prefetch-distance computation (Section IV-B).
//!
//! The kernel issues two kinds of software prefetches:
//!
//! - **A stream** (`prfm PLDL1KEEP`): each `mr×1` column sub-sliver of the
//!   packed A block is exactly one cache line (`mr · 8 = 64` bytes for the
//!   8×6 kernel), prefetched a short distance ahead so every A access hits
//!   L1: `PREFA = α_prea · unroll · mr · element`. The paper uses
//!   `α_prea = 2`, `unroll = 8` ⇒ `PREFA = 2·8·8·8 = 1024` bytes.
//!
//! - **B stream** (`prfm PLDL2KEEP`): the *next* `kc×nr` sliver of B is
//!   prefetched into L2 while the current sliver (already L1-resident) is
//!   being multiplied with the **last** A sliver, one full sliver ahead:
//!   `PREFB = kc · nr · element` (= 24576 bytes for the 8×6 blocking).

use crate::cacheblock::BlockSizes;

/// Prefetch distances in bytes for a given blocking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchDistances {
    /// Distance ahead of the A read pointer for `PLDL1KEEP` prefetches.
    pub prefa_bytes: usize,
    /// Distance ahead of the B read pointer for `PLDL2KEEP` prefetches.
    pub prefb_bytes: usize,
}

/// Compute the paper's prefetch distances.
///
/// `alpha_prea` is the look-ahead factor for the A stream (2 in the
/// paper), `unroll` the register-kernel unroll factor (8), `element`
/// the element size in bytes.
#[must_use]
pub fn prefetch_distances(
    blocks: &BlockSizes,
    alpha_prea: usize,
    unroll: usize,
    element: usize,
) -> PrefetchDistances {
    PrefetchDistances {
        prefa_bytes: alpha_prea * unroll * blocks.mr * element,
        prefb_bytes: blocks.kc * blocks.nr * element,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::MachineDesc;
    use crate::cacheblock::solve_blocking;

    #[test]
    fn paper_distances_for_8x6() {
        let m = MachineDesc::xgene();
        let b = solve_blocking(8, 6, 1, &m).unwrap();
        let d = prefetch_distances(&b, 2, 8, m.element_bytes);
        assert_eq!(d.prefa_bytes, 1024);
        assert_eq!(d.prefb_bytes, 24576);
    }

    #[test]
    fn prefa_is_whole_cache_lines_for_8x6() {
        let m = MachineDesc::xgene();
        let b = solve_blocking(8, 6, 1, &m).unwrap();
        let d = prefetch_distances(&b, 2, 8, m.element_bytes);
        assert_eq!(d.prefa_bytes % m.l1.line, 0);
        // one A sub-sliver = exactly one line (the reason 8x6 beats 6x8)
        assert_eq!(b.mr * m.element_bytes, m.l1.line);
    }
}
