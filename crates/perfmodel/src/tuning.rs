//! Model-seeded candidate enumeration and shape-class quantization for
//! the closed-loop autotuner (`dgemm-core::autotune`, DESIGN.md §14).
//!
//! The paper's thesis is that the analytic model makes empirical search
//! nearly unnecessary; Veras et al. ("Automating the Last-Mile") and
//! Martínez et al. ("Co-Design of the Dense Linear Algebra Software
//! Stack") make the complementary point that what little search remains
//! should be *pruned by the model*, not brute-forced. This module is
//! that pruning:
//!
//! - [`candidate_blockings`] emits a small candidate set seeded from
//!   [`crate::cacheblock::solve_blocking`] (eqs. (15)–(20)),
//!   [`crate::cacheblock::goto_heuristic_blocking`] (the Table VI
//!   baseline) and coordinate neighbors along the Table VI sensitivity
//!   axes (`kc`, `mc`, `nc` halved/doubled one at a time) — never a
//!   grid sweep;
//! - [`prune_by_model`] ranks candidates by the eq. (4) time bound for
//!   the probe shape and drops the ones the model already dominates;
//! - [`ShapeClass`] quantizes `(m, n, k)` into coarse per-dimension
//!   bands so measured winners generalize to the neighborhood of the
//!   probed shape and the tuning DB stays a handful of entries.

use crate::arch::MachineDesc;
use crate::cacheblock::{goto_heuristic_blocking, solve_blocking, BlockSizes};
use crate::model::{time_bound, MachineCosts, OverlapFactor};
use crate::ratio::GebpTraffic;

/// Upper inclusive edges of the per-dimension quantization bands. A
/// dimension above the last edge falls in the open-ended `xl` band.
pub const SHAPE_BANDS: [usize; 4] = [32, 128, 512, 2048];

/// Band labels, index-aligned with [`SHAPE_BANDS`] plus the trailing
/// open band.
const BAND_LABELS: [&str; 5] = ["32", "128", "512", "2048", "xl"];

/// Representative dimension used when synthesizing a probe problem for
/// a band (the band's upper edge; `xl` probes at 3072 so the sweep
/// stays affordable while still exceeding every closed band).
const BAND_REPRESENTATIVES: [usize; 5] = [32, 128, 512, 2048, 3072];

/// A coarse equivalence class of GEMM shapes: each of `m`, `n`, `k`
/// quantized to one of five bands. Tuning-DB entries are keyed by the
/// class [`ShapeClass::label`], so one measured winner serves every
/// shape in its class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ShapeClass {
    /// Band index of the output-row dimension.
    pub m_band: u8,
    /// Band index of the output-column dimension.
    pub n_band: u8,
    /// Band index of the inner dimension.
    pub k_band: u8,
}

fn band_of(dim: usize) -> u8 {
    for (i, edge) in SHAPE_BANDS.iter().enumerate() {
        if dim <= *edge {
            return i as u8;
        }
    }
    SHAPE_BANDS.len() as u8
}

impl ShapeClass {
    /// Quantize a shape (zero dimensions fall in the smallest band).
    #[must_use]
    pub fn of(m: usize, n: usize, k: usize) -> Self {
        ShapeClass {
            m_band: band_of(m),
            n_band: band_of(n),
            k_band: band_of(k),
        }
    }

    /// Stable class key, e.g. `m128-n512-k512` (used verbatim in the
    /// `dgemm-tune-v1` schema).
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "m{}-n{}-k{}",
            BAND_LABELS[self.m_band as usize],
            BAND_LABELS[self.n_band as usize],
            BAND_LABELS[self.k_band as usize]
        )
    }

    /// A probe shape representative of the class (each dimension at its
    /// band's representative size).
    #[must_use]
    pub fn representative(&self) -> (usize, usize, usize) {
        (
            BAND_REPRESENTATIVES[self.m_band as usize],
            BAND_REPRESENTATIVES[self.n_band as usize],
            BAND_REPRESENTATIVES[self.k_band as usize],
        )
    }
}

impl core::fmt::Display for ShapeClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Round `v` down to a positive multiple of `unit`.
fn down_to(v: usize, unit: usize) -> usize {
    let unit = unit.max(1);
    (v / unit * unit).max(unit)
}

/// The candidate set for one `(kernel, threads)` tuning sweep, analytic
/// seed first.
///
/// Contents, deduplicated and capped at `budget`:
///
/// 1. the analytic blocking for `threads` (eqs. (15)–(20)) — always
///    index 0, because it is exactly what an untuned
///    `GemmConfig::for_kernel` runs and the tuner scores everything
///    against it;
/// 2. the analytic *serial* blocking when `threads > 1` (Fig. 14 shows
///    the two differ only in `mc`/`nc`; on a host whose L2 is private
///    the serial variant can win even pooled);
/// 3. the Goto half-cache heuristic (the paper's Table VI baseline);
/// 4. coordinate neighbors of the analytic seed along the Table VI
///    sensitivity axes: `kc`, `mc`, `nc` individually scaled by 1/2 and
///    2 (`kc` also by 1/4 — hosts with smaller L1s than the X-Gene sit
///    more than one halving away), rounded to the kernel/line units;
/// 5. one uniformly compact variant (`kc/4, mc/2, nc/4`) for hosts
///    whose whole hierarchy is smaller than the paper machine's.
///
/// The list is *seeded*, not exhaustive: a full Table VI-style grid
/// over the same axes would be |kc|·|mc|·|nc| ≈ 4·3·4 = 48 candidates
/// before dedup; the coordinate walk keeps it ≤ 13.
#[must_use]
pub fn candidate_blockings(
    mr: usize,
    nr: usize,
    threads: usize,
    machine: &MachineDesc,
    budget: usize,
) -> Vec<BlockSizes> {
    let threads = threads.clamp(1, machine.cores);
    let fallback = BlockSizes::custom(mr, nr, 256, 8 * mr, 64 * nr);
    let seed = solve_blocking(mr, nr, threads, machine).unwrap_or(fallback);
    let line = machine.doubles_per_line();

    let mut out: Vec<BlockSizes> = Vec::new();
    let mut push = |b: BlockSizes| {
        if b.kc > 0
            && b.mc > 0
            && b.nc > 0
            && !out.iter().any(|o| (o.kc, o.mc, o.nc) == (b.kc, b.mc, b.nc))
        {
            out.push(b);
        }
    };

    push(seed);
    if threads > 1 {
        if let Ok(serial) = solve_blocking(mr, nr, 1, machine) {
            push(serial);
        }
    }
    push(goto_heuristic_blocking(mr, nr, machine));

    // Table VI axes: one coordinate at a time around the analytic seed.
    for kc in [seed.kc / 4, seed.kc / 2, seed.kc * 2] {
        push(BlockSizes::custom(
            mr,
            nr,
            down_to(kc, 32),
            seed.mc,
            seed.nc,
        ));
    }
    for mc in [seed.mc / 2, seed.mc * 2] {
        push(BlockSizes::custom(
            mr,
            nr,
            seed.kc,
            down_to(mc, mr),
            seed.nc,
        ));
    }
    for nc in [seed.nc / 2, seed.nc * 2] {
        push(BlockSizes::custom(
            mr,
            nr,
            seed.kc,
            seed.mc,
            down_to(nc, line),
        ));
    }
    // Uniformly compact variant for hosts far smaller than the X-Gene.
    push(BlockSizes::custom(
        mr,
        nr,
        down_to(seed.kc / 4, 32),
        down_to(seed.mc / 2, mr),
        down_to(seed.nc / 4, line),
    ));

    out.truncate(budget.max(1));
    out
}

/// Clamp a candidate to the probe shape so equivalent-after-clamping
/// candidates collapse: blocks larger than the matrix walk identical
/// loops, and measuring both would waste sweep budget.
#[must_use]
pub fn clamp_to_shape(b: &BlockSizes, m: usize, n: usize, k: usize) -> BlockSizes {
    let line = 8; // packed slivers stay line-aligned in elements
    let kc = b.kc.min(k.max(1));
    let mc = b.mc.min(down_to(m.max(b.mr), b.mr));
    let nc = b.nc.min(down_to(n.max(b.nr * line), b.nr));
    BlockSizes::custom(b.mr, b.nr, kc, mc, nc)
}

/// Equation (4) time bound, in cycles, for one `m×n×k` GEMM under a
/// candidate blocking: `F = 2mnk`, `W = F / γ_GEBP(blocking)`.
#[must_use]
pub fn candidate_time_bound(b: &BlockSizes, m: usize, n: usize, k: usize) -> f64 {
    let f = 2.0 * m as f64 * n as f64 * k as f64;
    let gamma = GebpTraffic::gamma(
        b.mr,
        b.nr,
        b.kc.max(1),
        b.mc.max(1).min(m.max(1)),
        b.nc.max(1).min(n.max(1)),
    );
    let w = if gamma > 0.0 { f / gamma } else { f };
    time_bound(
        f,
        w,
        &MachineCosts::xgene_cycles(),
        &OverlapFactor::Rational { c: 0.4 },
    )
}

/// Drop candidates whose model bound the best candidate's already
/// dominates by more than `keep_factor` — the model-pruning step that
/// keeps the measured sweep small. Index 0 (the analytic seed /
/// untuned baseline) is always kept, whatever its bound, because the
/// tuner reports speedup relative to it.
#[must_use]
pub fn prune_by_model(
    candidates: Vec<BlockSizes>,
    m: usize,
    n: usize,
    k: usize,
    keep_factor: f64,
) -> Vec<BlockSizes> {
    if candidates.len() <= 1 {
        return candidates;
    }
    let bounds: Vec<f64> = candidates
        .iter()
        .map(|b| candidate_time_bound(b, m, n, k))
        .collect();
    let best = bounds.iter().copied().fold(f64::INFINITY, f64::min);
    candidates
        .into_iter()
        .zip(bounds)
        .enumerate()
        .filter(|(i, (_, bound))| *i == 0 || *bound <= best * keep_factor)
        .map(|(_, (b, _))| b)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_quantize_and_label() {
        assert_eq!(ShapeClass::of(8, 256, 256).label(), "m32-n512-k512");
        assert_eq!(ShapeClass::of(96, 96, 96).label(), "m128-n128-k128");
        assert_eq!(ShapeClass::of(4096, 10, 2048).label(), "mxl-n32-k2048");
        // band edges are inclusive
        assert_eq!(ShapeClass::of(32, 128, 512).label(), "m32-n128-k512");
        assert_eq!(ShapeClass::of(33, 129, 513).label(), "m128-n512-k2048");
    }

    #[test]
    fn class_is_stable_within_a_band() {
        let c = ShapeClass::of(100, 300, 400);
        for (m, n, k) in [(65, 257, 300), (128, 512, 512), (90, 400, 513)] {
            let d = ShapeClass::of(m, n, k);
            assert_eq!(
                c == d,
                c.label() == d.label(),
                "label must be injective on classes"
            );
        }
        assert_eq!(ShapeClass::of(65, 257, 300), c);
    }

    #[test]
    fn representatives_fall_in_their_own_class() {
        for (m, n, k) in [(8, 8, 8), (100, 100, 100), (300, 20, 5000)] {
            let c = ShapeClass::of(m, n, k);
            let (rm, rn, rk) = c.representative();
            assert_eq!(ShapeClass::of(rm, rn, rk), c, "for {m}x{n}x{k}");
        }
    }

    #[test]
    fn candidates_are_seeded_not_brute_force() {
        let m = MachineDesc::xgene();
        let cands = candidate_blockings(8, 6, 1, &m, 32);
        assert!(cands.len() <= 13, "got {}", cands.len());
        assert!(cands.len() >= 8);
        // index 0 is exactly the analytic (untuned) blocking
        let seed = solve_blocking(8, 6, 1, &m).unwrap();
        assert_eq!(
            (cands[0].kc, cands[0].mc, cands[0].nc),
            (seed.kc, seed.mc, seed.nc)
        );
        // the Goto baseline is present
        let goto = goto_heuristic_blocking(8, 6, &m);
        assert!(cands
            .iter()
            .any(|b| (b.kc, b.mc, b.nc) == (goto.kc, goto.mc, goto.nc)));
        // no duplicates, all well-formed multiples
        for (i, b) in cands.iter().enumerate() {
            assert!(b.kc > 0 && b.mc > 0 && b.nc > 0);
            assert_eq!(b.mc % 8, 0, "mc stays a multiple of mr");
            for o in &cands[i + 1..] {
                assert_ne!((b.kc, b.mc, b.nc), (o.kc, o.mc, o.nc));
            }
        }
    }

    #[test]
    fn parallel_candidates_include_the_serial_blocking() {
        let m = MachineDesc::xgene();
        let cands = candidate_blockings(8, 6, 8, &m, 32);
        let serial = solve_blocking(8, 6, 1, &m).unwrap();
        assert!(cands
            .iter()
            .any(|b| (b.kc, b.mc, b.nc) == (serial.kc, serial.mc, serial.nc)));
    }

    #[test]
    fn budget_caps_the_set() {
        let m = MachineDesc::xgene();
        assert_eq!(candidate_blockings(8, 6, 1, &m, 4).len(), 4);
        assert_eq!(candidate_blockings(8, 6, 1, &m, 1).len(), 1);
    }

    #[test]
    fn clamping_collapses_oversized_blocks() {
        let b = BlockSizes::custom(8, 6, 512, 56, 1920);
        let c = clamp_to_shape(&b, 32, 48, 64);
        assert_eq!(c.kc, 64);
        assert!(c.mc <= 32 && c.mc.is_multiple_of(8));
        assert!(c.nc <= 48);
        // a shape larger than the blocks is untouched
        let d = clamp_to_shape(&b, 4096, 4096, 4096);
        assert_eq!((d.kc, d.mc, d.nc), (512, 56, 1920));
    }

    #[test]
    fn model_pruning_keeps_the_seed_and_the_best() {
        let m = MachineDesc::xgene();
        let mut cands = candidate_blockings(8, 6, 1, &m, 32);
        // adversarial junk candidate with a terrible gamma
        cands.push(BlockSizes::custom(8, 6, 1, 8, 8));
        let n = cands.len();
        let pruned = prune_by_model(cands, 1024, 1024, 1024, 1.2);
        assert!(pruned.len() < n, "junk candidate must be pruned");
        assert!(!pruned.is_empty());
        // index 0 (the analytic seed) survives
        let seed = solve_blocking(8, 6, 1, &m).unwrap();
        assert_eq!(
            (pruned[0].kc, pruned[0].mc, pruned[0].nc),
            (seed.kc, seed.mc, seed.nc)
        );
        // the junk candidate is gone
        assert!(!pruned.iter().any(|b| b.kc == 1));
    }

    #[test]
    fn bounds_order_good_before_bad() {
        let good = BlockSizes::custom(8, 6, 512, 56, 1920);
        let bad = BlockSizes::custom(8, 6, 8, 8, 48);
        assert!(
            candidate_time_bound(&good, 1024, 1024, 1024)
                < candidate_time_bound(&bad, 1024, 1024, 1024)
        );
    }
}
