//! Software-implemented register rotation (Section IV-A, equation (12),
//! Table I).
//!
//! The 8×6 register kernel keeps the 48 C elements pinned in v8–v31 and has
//! only eight registers, v0–v7, for the A and B operands — but one unrolled
//! copy of the loop body needs *seven* of them (four for the 8-element A
//! sub-sliver, three for the 6-element B sub-sliver), and the next copy
//! needs seven more. Only `nrf = 6` registers can be reused between
//! consecutive copies, so registers must *rotate*: the loop is unrolled 8×
//! and each copy uses a rotated subset of {v0…v7}, with one register
//! resting per copy.
//!
//! Equation (12) asks for the rotation that maximizes the minimum distance
//! between the **last read of the current value** in a register (`CL`) and
//! the **first read of the next value** in the same register (`NF`) — the
//! window into which the load refilling that register must fit without
//! stalling the pipeline.
//!
//! We model a rotation as a permutation σ over `pool` *slots* (the values
//! A₀…A₃, B₀…B₂ plus one REST slot): the register that holds value `v` in
//! copy `i` holds `σ(v)` in copy `i+1`. Distances are measured in FMA
//! positions of the unrolled stream, exactly the `Loc` function of the
//! paper (only `fmla` orderings are considered in equation (12)).

use std::fmt;

/// A logical operand value of one loop-body copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// `A(p)` — the vector register holding A elements `2p, 2p+1` of the
    /// current `mr×1` column sub-sliver.
    A(usize),
    /// `B(q)` — the vector register holding B elements `2q, 2q+1` of the
    /// current `1×nr` row sub-sliver.
    B(usize),
}

/// Geometry of one register-kernel copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KernelShape {
    /// Register-block rows (even).
    pub mr: usize,
    /// Register-block columns (even).
    pub nr: usize,
}

impl KernelShape {
    /// The paper's 8×6 kernel.
    #[must_use]
    pub fn paper_8x6() -> Self {
        KernelShape { mr: 8, nr: 6 }
    }

    /// Number of vector registers holding the A sub-sliver (`mr/2`).
    #[must_use]
    pub fn n_a(&self) -> usize {
        self.mr / 2
    }

    /// Number of vector registers holding the B sub-sliver (`nr/2`).
    #[must_use]
    pub fn n_b(&self) -> usize {
        self.nr / 2
    }

    /// Operand values per copy (`mr/2 + nr/2`).
    #[must_use]
    pub fn n_values(&self) -> usize {
        self.n_a() + self.n_b()
    }

    /// FMA instructions per copy (`mr·nr/2` two-lane FMAs).
    #[must_use]
    pub fn fmlas_per_copy(&self) -> usize {
        self.mr * self.nr / 2
    }

    /// All values of one copy, A first.
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.n_a())
            .map(Value::A)
            .chain((0..self.n_b()).map(Value::B))
    }

    /// FMA read positions of a value within one copy, in the fixed
    /// row-pair-major order of Figure 8: for each A register `p`, iterate
    /// all B lanes `(q, lane)`.
    ///
    /// Position of `fmla(C[p][2q+lane], A_p, B_q.d[lane])` is
    /// `p·nr + 2q + lane`.
    #[must_use]
    pub fn read_positions(&self, v: Value) -> Vec<usize> {
        match v {
            Value::A(p) => (p * self.nr..(p + 1) * self.nr).collect(),
            Value::B(q) => (0..self.n_a())
                .flat_map(|p| {
                    let base = p * self.nr + 2 * q;
                    [base, base + 1]
                })
                .collect(),
        }
    }

    /// `CL`: position of the last FMA reading `v` within one copy.
    #[must_use]
    pub fn cl(&self, v: Value) -> usize {
        *self.read_positions(v).last().expect("non-empty reads")
    }

    /// `NF`: position of the first FMA reading `v` within one copy.
    #[must_use]
    pub fn nf(&self, v: Value) -> usize {
        *self.read_positions(v).first().expect("non-empty reads")
    }
}

/// A register-rotation scheme: a permutation over `pool` slots.
///
/// Slots `0..n_values` are the operand values (A first, then B); slots
/// `n_values..pool` are REST slots (a register parked for one copy).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RotationScheme {
    shape: KernelShape,
    /// `sigma[s]` = slot held next copy by the register holding slot `s`.
    sigma: Vec<usize>,
}

impl RotationScheme {
    /// Build a scheme from an explicit permutation. Panics if `sigma` is
    /// not a permutation or shorter than the value count.
    #[must_use]
    pub fn new(shape: KernelShape, sigma: Vec<usize>) -> Self {
        let n = sigma.len();
        assert!(n >= shape.n_values(), "pool smaller than value count");
        let mut seen = vec![false; n];
        for &s in &sigma {
            assert!(s < n && !seen[s], "sigma is not a permutation");
            seen[s] = true;
        }
        RotationScheme { shape, sigma }
    }

    /// The no-rotation baseline: every value stays in its own register,
    /// REST slots stay parked. This is the "simple-minded approach of
    /// using just 7 registers, with one to spare".
    #[must_use]
    pub fn identity(shape: KernelShape, pool: usize) -> Self {
        Self::new(shape, (0..pool).collect())
    }

    /// Double-buffering ("ping-pong"): value `v` alternates between
    /// registers `v` and `v + n_values` each copy. This is what the
    /// paper's 8×4 and 4×4 kernels do (Figure 10: operand pairs like
    /// `v0/v8`) — they have enough spare registers that no rotation is
    /// needed. Requires `pool = 2 · n_values`.
    #[must_use]
    pub fn ping_pong(shape: KernelShape) -> Self {
        let nv = shape.n_values();
        let sigma = (0..2 * nv).map(|s| (s + nv) % (2 * nv)).collect();
        Self::new(shape, sigma)
    }

    /// Kernel shape this scheme rotates.
    #[must_use]
    pub fn shape(&self) -> KernelShape {
        self.shape
    }

    /// Pool size (number of physical operand registers).
    #[must_use]
    pub fn pool(&self) -> usize {
        self.sigma.len()
    }

    /// Slot held in the next copy by the register holding slot `s` now.
    #[must_use]
    pub fn next_slot(&self, s: usize) -> usize {
        self.sigma[s]
    }

    /// The slot of a value.
    #[must_use]
    pub fn slot_of(&self, v: Value) -> usize {
        match v {
            Value::A(p) => p,
            Value::B(q) => self.shape.n_a() + q,
        }
    }

    /// The value in a slot, or `None` for a REST slot.
    #[must_use]
    pub fn value_in_slot(&self, s: usize) -> Option<Value> {
        let na = self.shape.n_a();
        let nv = self.shape.n_values();
        if s < na {
            Some(Value::A(s))
        } else if s < nv {
            Some(Value::B(s - na))
        } else {
            None
        }
    }

    /// Period of the rotation: after this many copies the assignment
    /// repeats. The kernel's unroll factor must be a multiple of this.
    #[must_use]
    pub fn period(&self) -> usize {
        let n = self.pool();
        let mut period = 1usize;
        let mut visited = vec![false; n];
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut len = 0;
            let mut s = start;
            loop {
                visited[s] = true;
                len += 1;
                s = self.sigma[s];
                if s == start {
                    break;
                }
            }
            period = lcm(period, len);
        }
        period
    }

    /// Per-copy register assignment: `table[c][r]` is the slot held by
    /// physical register `r` in copy `c` (copy 0 uses the identity layout:
    /// register `r` holds slot `r`).
    #[must_use]
    pub fn assignment_table(&self, copies: usize) -> Vec<Vec<usize>> {
        let n = self.pool();
        let mut table = Vec::with_capacity(copies);
        let mut cur: Vec<usize> = (0..n).collect();
        for _ in 0..copies {
            table.push(cur.clone());
            cur = cur.iter().map(|&s| self.sigma[s]).collect();
        }
        table
    }

    /// Physical register holding value `v` in copy `c`.
    #[must_use]
    pub fn register_of(&self, v: Value, copy: usize) -> usize {
        let want = self.slot_of(v);
        let table = self.assignment_table(copy + 1);
        table[copy]
            .iter()
            .position(|&s| s == want)
            .expect("every value has a register each copy")
    }

    /// Equation (12): minimum over all registers of
    /// `Loc(R, NF) − Loc(R, CL)` in FMA positions of the unrolled stream.
    ///
    /// For a register holding value `v` now and value `w` after `g` copies
    /// (resting in between), the distance is
    /// `g·fmlas_per_copy + NF(w) − CL(v)`.
    #[must_use]
    pub fn min_reuse_distance(&self) -> isize {
        let fpc = self.shape.fmlas_per_copy() as isize;
        let mut best = isize::MAX;
        for s in 0..self.pool() {
            let Some(v) = self.value_in_slot(s) else {
                continue;
            };
            // walk forward through REST slots to the next value
            let mut w_slot = self.sigma[s];
            let mut gap = 1isize;
            while self.value_in_slot(w_slot).is_none() {
                w_slot = self.sigma[w_slot];
                gap += 1;
                debug_assert!(gap <= self.pool() as isize, "orbit must hit a value");
            }
            let w = self.value_in_slot(w_slot).expect("found a value");
            let d = gap * fpc + self.shape.nf(w) as isize - self.shape.cl(v) as isize;
            best = best.min(d);
        }
        best
    }

    /// Check that consecutive copies share exactly `n_values − 1` registers
    /// (i.e. `nrf` registers' worth of values are reused; one register
    /// swaps with the resting one) — only meaningful when the pool has
    /// exactly one REST slot.
    #[must_use]
    pub fn reused_registers_between_copies(&self) -> usize {
        let table = self.assignment_table(2);
        let nv = self.shape.n_values();
        // registers that hold a value (not REST) in both copies
        (0..self.pool())
            .filter(|&r| table[0][r] < nv && table[1][r] < nv)
            .count()
    }
}

impl fmt::Display for RotationScheme {
    /// Render the Table I layout: for each copy, which register holds each
    /// A/B value.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let copies = self.period();
        writeln!(
            f,
            "copy:      {}",
            (0..copies).fold(String::new(), |a, c| a + &format!("#{c:<3}"))
        )?;
        for v in self.shape.values() {
            let name = match v {
                Value::A(p) => format!("A[{p}]"),
                Value::B(q) => format!("B[{q}]"),
            };
            let regs = (0..copies).fold(String::new(), |a, c| {
                a + &format!("v{:<3}", self.register_of(v, c))
            });
            writeln!(f, "{name:<10} {regs}")?;
        }
        Ok(())
    }
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

/// Exhaustively solve equation (12) over all single-cycle rotations of the
/// pool (period = pool size, as in the paper's 8-copy unroll), returning
/// the scheme with the maximum [`RotationScheme::min_reuse_distance`].
///
/// A single `pool`-cycle guarantees every register rests exactly once per
/// period and the unroll factor equals the pool size. For pool = 8 this is
/// a 7! = 5040-candidate search.
#[must_use]
pub fn optimal_rotation(shape: KernelShape, pool: usize) -> RotationScheme {
    assert!(
        pool > shape.n_values(),
        "rotation needs at least one spare register"
    );
    assert!(pool <= 9, "exhaustive search limited to small pools");
    // enumerate cyclic permutations: fix sigma as the cycle
    // 0 -> perm[0] -> perm[1] -> ... -> 0 over the remaining elements
    let rest: Vec<usize> = (1..pool).collect();
    let mut best: Option<(isize, RotationScheme)> = None;
    permute(rest, &mut |perm| {
        let mut sigma = vec![0usize; pool];
        let mut prev = 0usize;
        for &s in perm {
            sigma[prev] = s;
            prev = s;
        }
        sigma[prev] = 0;
        let scheme = RotationScheme::new(shape, sigma);
        let d = scheme.min_reuse_distance();
        if best.as_ref().is_none_or(|(bd, _)| d > *bd) {
            best = Some((d, scheme));
        }
    });
    best.expect("at least one cyclic rotation exists").1
}

fn permute(elems: Vec<usize>, visit: &mut impl FnMut(&[usize])) {
    fn go(a: &mut [usize], k: usize, visit: &mut impl FnMut(&[usize])) {
        if k == a.len() {
            visit(a);
            return;
        }
        for i in k..a.len() {
            a.swap(k, i);
            go(a, k + 1, visit);
            a.swap(k, i);
        }
    }
    let mut a = elems;
    go(&mut a, 0, visit);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> KernelShape {
        KernelShape::paper_8x6()
    }

    #[test]
    fn shape_counts_for_8x6() {
        let s = shape();
        assert_eq!(s.n_a(), 4);
        assert_eq!(s.n_b(), 3);
        assert_eq!(s.n_values(), 7);
        assert_eq!(s.fmlas_per_copy(), 24);
    }

    #[test]
    fn read_positions_cover_all_fmlas_exactly_once() {
        let s = shape();
        let mut seen = vec![0usize; s.fmlas_per_copy()];
        for v in s.values() {
            for p in s.read_positions(v) {
                seen[p] += 1;
            }
        }
        // every fmla reads exactly one A register and one B register
        assert!(seen.iter().all(|&c| c == 2));
    }

    #[test]
    fn cl_nf_match_figure8_order() {
        let s = shape();
        assert_eq!(s.nf(Value::A(0)), 0);
        assert_eq!(s.cl(Value::A(0)), 5);
        assert_eq!(s.cl(Value::A(3)), 23);
        assert_eq!(s.nf(Value::B(0)), 0);
        assert_eq!(s.cl(Value::B(0)), 19);
        assert_eq!(s.cl(Value::B(2)), 23);
    }

    #[test]
    fn identity_min_distance_is_five() {
        // Without rotation, B registers have only a 5-FMA window:
        // CL(B_q) = 19 + 2q, NF next copy = 24 + 2q.
        let id = RotationScheme::identity(shape(), 8);
        assert_eq!(id.min_reuse_distance(), 5);
        assert_eq!(id.period(), 1);
    }

    #[test]
    fn optimal_rotation_beats_identity() {
        let opt = optimal_rotation(shape(), 8);
        let id = RotationScheme::identity(shape(), 8);
        assert!(
            opt.min_reuse_distance() > id.min_reuse_distance(),
            "rotation must widen the worst reuse window: {} vs {}",
            opt.min_reuse_distance(),
            id.min_reuse_distance()
        );
        // the paper's scheme achieves 7; the exhaustive optimum is at
        // least that
        assert!(opt.min_reuse_distance() >= 7);
    }

    #[test]
    fn optimal_rotation_has_period_eight() {
        let opt = optimal_rotation(shape(), 8);
        assert_eq!(opt.period(), 8, "single 8-cycle rotation");
    }

    #[test]
    fn rotation_reuses_nrf_registers() {
        // nrf = 6: six registers carry values in both of two consecutive
        // copies (one register is being reloaded, one rests).
        let opt = optimal_rotation(shape(), 8);
        assert_eq!(opt.reused_registers_between_copies(), 6);
    }

    #[test]
    fn every_copy_uses_seven_distinct_registers() {
        let opt = optimal_rotation(shape(), 8);
        let table = opt.assignment_table(8);
        for row in &table {
            let used: Vec<usize> = (0..8).filter(|&r| row[r] < 7).collect();
            assert_eq!(used.len(), 7);
        }
        // and the resting register differs from copy to copy
        let rests: Vec<usize> = table
            .iter()
            .map(|row| row.iter().position(|&s| s == 7).unwrap())
            .collect();
        let mut sorted = rests.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            8,
            "each register rests exactly once per period"
        );
    }

    #[test]
    fn register_of_is_consistent_with_table() {
        let opt = optimal_rotation(shape(), 8);
        let table = opt.assignment_table(8);
        for (c, row) in table.iter().enumerate() {
            for v in shape().values() {
                let r = opt.register_of(v, c);
                assert_eq!(row[r], opt.slot_of(v));
            }
        }
    }

    #[test]
    fn display_renders_all_values() {
        let opt = optimal_rotation(shape(), 8);
        let s = format!("{opt}");
        for name in ["A[0]", "A[3]", "B[0]", "B[2]"] {
            assert!(s.contains(name), "missing row {name}");
        }
    }

    #[test]
    fn ping_pong_properties() {
        // 8x4 kernel: 6 values, 12-register pool, period 2, and every
        // value's reuse window spans a full extra copy.
        let sh = KernelShape { mr: 8, nr: 4 };
        let pp = RotationScheme::ping_pong(sh);
        assert_eq!(pp.period(), 2);
        assert_eq!(pp.pool(), 12);
        // distance: one full copy (16 fmlas) + NF - CL, minimized over
        // values; far larger than the rotated 8-register scheme allows.
        let id = RotationScheme::identity(sh, 12);
        assert!(pp.min_reuse_distance() > id.min_reuse_distance());
        let table = pp.assignment_table(4);
        // alternating layout: copy 2 repeats copy 0
        assert_eq!(table[0], table[2]);
        assert_ne!(table[0], table[1]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_sigma_rejected() {
        let _ = RotationScheme::new(shape(), vec![0, 0, 1, 2, 3, 4, 5, 6]);
    }
}
