//! Instruction scheduling for the register kernel (Section IV-A,
//! equation (13), Figure 7).
//!
//! Each unrolled copy of the 8×6 register kernel executes 24 `fmla`
//! (in the fixed row-pair-major order of Figure 8), 7 `ldr` refilling the
//! operand registers for the *next* copy, and prefetches. Equation (13)
//! asks for the placement of the loads that maximizes the minimum RAW
//! distance `Loc(R, vi) − Loc(W, vi)` — the slack between a load and the
//! first FMA consuming the loaded value — so the load latency can be
//! hidden.
//!
//! A load refilling register `r` may only be placed after the last FMA
//! reading `r`'s current value (it would otherwise clobber a live value),
//! so the earliest legal position is determined by the rotation scheme:
//! this is where rotation (equation (12)) and scheduling (equation (13))
//! compose. Placing every load as early as legally possible (ASAP, with at
//! most one load per inter-FMA gap to keep the load/store pipe from
//! clustering) maximizes each load's distance independently and hence the
//! minimum — the exchange argument of classic list scheduling.

use crate::rotation::{KernelShape, RotationScheme, Value};

/// One instruction slot of the scheduled register kernel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotInstr {
    /// `fmla C[row_pair][col].2d, A(p).2d, B(q).d[lane]` — the C index is
    /// implied by `(a, b, lane)`.
    Fmla {
        /// A value read (row pair `p`).
        a: Value,
        /// B value read (column pair `q`).
        b: Value,
        /// Lane of the B register (0 or 1).
        lane: usize,
        /// Physical operand register holding `a` in this copy.
        a_reg: usize,
        /// Physical operand register holding `b` in this copy.
        b_reg: usize,
    },
    /// `ldr q<reg>, [x..], #16` — refills `reg` with `value` for the next
    /// copy.
    Load {
        /// Physical register written.
        reg: usize,
        /// The value (of the next copy) being loaded.
        value: Value,
    },
    /// `prfm PLDL1KEEP` for the A stream.
    PrefetchA,
    /// `prfm PLDL2KEEP` for the B stream.
    PrefetchB,
}

/// A fully scheduled register kernel: `period` copies of interleaved
/// FMA/load/prefetch slots.
#[derive(Clone, Debug)]
pub struct ScheduledKernel {
    shape: KernelShape,
    copies: Vec<Vec<SlotInstr>>,
}

impl ScheduledKernel {
    /// Kernel shape.
    #[must_use]
    pub fn shape(&self) -> KernelShape {
        self.shape
    }

    /// The scheduled copies (`period` of them).
    #[must_use]
    pub fn copies(&self) -> &[Vec<SlotInstr>] {
        &self.copies
    }

    /// Total instruction slots per period.
    #[must_use]
    pub fn slots_per_period(&self) -> usize {
        self.copies.iter().map(Vec::len).sum()
    }

    /// Flattened instruction stream of one period.
    #[must_use]
    pub fn flat(&self) -> Vec<SlotInstr> {
        self.copies.iter().flatten().copied().collect()
    }

    /// Equation (13): the minimum, over all loads, of the distance in
    /// instruction slots between the load and the first FMA reading the
    /// loaded register, evaluated cyclically over one period.
    #[must_use]
    pub fn min_raw_distance(&self) -> usize {
        let flat = self.flat();
        let n = flat.len();
        let mut best = usize::MAX;
        for (i, ins) in flat.iter().enumerate() {
            let SlotInstr::Load { reg, .. } = *ins else {
                continue;
            };
            // first FMA after i (cyclically) reading `reg`
            let mut d = usize::MAX;
            for off in 1..=n {
                if let SlotInstr::Fmla { a_reg, b_reg, .. } = flat[(i + off) % n] {
                    if a_reg == reg || b_reg == reg {
                        d = off;
                        break;
                    }
                }
            }
            best = best.min(d);
        }
        best
    }

    /// Verify the schedule is *correct*: walking the stream, every FMA
    /// reads a register that currently holds the value the FMA expects,
    /// and no load clobbers a value that is still to be read.
    ///
    /// Returns `Err` with a description of the first violation.
    pub fn validate(&self, scheme: &RotationScheme) -> Result<(), String> {
        let pool = scheme.pool();
        // regs[r] = (copy_index, value) currently held
        let mut regs: Vec<Option<(usize, Value)>> = vec![None; pool];
        // copy 0 operands are pre-loaded by the kernel prologue
        for v in self.shape.values() {
            let r = scheme.register_of(v, 0);
            regs[r] = Some((0, v));
        }
        for (c, copy) in self.copies.iter().enumerate() {
            for (pos, ins) in copy.iter().enumerate() {
                match *ins {
                    SlotInstr::Fmla {
                        a, b, a_reg, b_reg, ..
                    } => {
                        for (v, r) in [(a, a_reg), (b, b_reg)] {
                            match regs[r] {
                                Some((vc, vv)) if vc == c && vv == v => {}
                                other => {
                                    return Err(format!(
                                        "copy {c} slot {pos}: fmla expects {v:?} of copy {c} \
                                         in v{r}, found {other:?}"
                                    ));
                                }
                            }
                        }
                    }
                    SlotInstr::Load { reg, value } => {
                        // the value being replaced must have no remaining reads
                        if let Some((vc, vv)) = regs[reg] {
                            if vc == c {
                                let last_read = self.shape.cl(vv);
                                let reads_left = copy.iter().skip(pos + 1).any(|later| {
                                    matches!(later, SlotInstr::Fmla { a_reg, b_reg, .. }
                                             if *a_reg == reg || *b_reg == reg)
                                });
                                if reads_left {
                                    return Err(format!(
                                        "copy {c} slot {pos}: load into v{reg} clobbers \
                                         {vv:?} (last read at fmla {last_read})"
                                    ));
                                }
                            }
                        }
                        regs[reg] = Some(((c + 1) % self.copies.len(), value));
                    }
                    SlotInstr::PrefetchA | SlotInstr::PrefetchB => {}
                }
            }
        }
        // after the last copy every register must hold copy-0 values again
        for v in self.shape.values() {
            let r = scheme.register_of(v, 0);
            match regs[r] {
                Some((0, vv)) if vv == v => {}
                other => {
                    return Err(format!(
                        "after one period v{r} should hold {v:?} of copy 0, found {other:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Instruction-mix statistics for one period.
    #[must_use]
    pub fn mix(&self) -> InstructionMix {
        let mut mix = InstructionMix::default();
        for ins in self.flat() {
            match ins {
                SlotInstr::Fmla { .. } => mix.fmla += 1,
                SlotInstr::Load { .. } => mix.ldr += 1,
                SlotInstr::PrefetchA | SlotInstr::PrefetchB => mix.prfm += 1,
            }
        }
        mix
    }
}

/// Counts of each instruction kind in one period of the kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstructionMix {
    /// FMA instructions.
    pub fmla: usize,
    /// 128-bit vector loads.
    pub ldr: usize,
    /// Prefetch instructions.
    pub prfm: usize,
}

impl InstructionMix {
    /// Fraction of arithmetic instructions,
    /// `fmla / (fmla + ldr)` — the paper's
    /// "(mr·nr/2) / (mr·nr/2 + (mr+nr)/2)" metric from Section V-A.
    #[must_use]
    pub fn arithmetic_fraction(&self) -> f64 {
        self.fmla as f64 / (self.fmla + self.ldr) as f64
    }
}

/// Scheduling options.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleOptions {
    /// Max loads placed in one inter-FMA gap (1 spreads them for the
    /// single load/store pipe).
    pub max_loads_per_gap: usize,
    /// Insert a `prfm PLDL1KEEP` for the A stream each copy.
    pub prefetch_a: bool,
    /// Insert a `prfm PLDL2KEEP` for the B stream each copy.
    pub prefetch_b: bool,
}

impl Default for ScheduleOptions {
    fn default() -> Self {
        ScheduleOptions {
            max_loads_per_gap: 1,
            prefetch_a: true,
            prefetch_b: false,
        }
    }
}

/// Solve equation (13): schedule the loads of every copy ASAP subject to
/// the anti-dependence constraint imposed by the rotation scheme.
#[must_use]
pub fn schedule_kernel(scheme: &RotationScheme, opts: &ScheduleOptions) -> ScheduledKernel {
    let shape = scheme.shape();
    let period = scheme.period();
    let fpc = shape.fmlas_per_copy();
    let table = scheme.assignment_table(period);
    let mut copies = Vec::with_capacity(period);

    for c in 0..period {
        let next = (c + 1) % period;
        // Loads needed this copy: one per value of the next copy.
        // Earliest legal gap g (load placed *after* fmla index g-1, i.e.
        // before fmla g): after the CL of the register's current value.
        let mut loads: Vec<(usize, SlotInstr)> = shape
            .values()
            .map(|w| {
                let reg = table[next]
                    .iter()
                    .position(|&s| s == scheme.slot_of(w))
                    .unwrap();
                let earliest = match scheme.value_in_slot(table[c][reg]) {
                    Some(v) => shape.cl(v) + 1,
                    None => 0, // register rests this copy: load any time
                };
                (earliest, SlotInstr::Load { reg, value: w })
            })
            .collect();
        loads.sort_by_key(|&(e, _)| e);

        // Greedy gap assignment: gaps 0..=fpc, capacity max_loads_per_gap.
        let mut gap_load: Vec<Vec<SlotInstr>> = vec![Vec::new(); fpc + 1];
        for (earliest, ld) in loads {
            let mut g = earliest;
            while g < fpc && gap_load[g].len() >= opts.max_loads_per_gap {
                g += 1;
            }
            // If even the last gap is taken, stack there: correctness
            // (anti-dependence) always wins over spreading.
            gap_load[g.min(fpc)].push(ld);
        }

        // Prefetches go in the middle-ish free gaps.
        let mut prefetches = Vec::new();
        if opts.prefetch_a {
            prefetches.push(SlotInstr::PrefetchA);
        }
        if opts.prefetch_b {
            prefetches.push(SlotInstr::PrefetchB);
        }
        let mut g = fpc / 2;
        for pf in prefetches {
            while g <= fpc && gap_load[g].len() >= opts.max_loads_per_gap {
                g += 1;
            }
            let slot = if g <= fpc { g } else { fpc };
            gap_load[slot].push(pf);
            g += 1;
        }

        // Emit: before each fmla t, the loads assigned to gap t.
        let mut copy = Vec::with_capacity(fpc + shape.n_values() + 2);
        for (t, gap) in gap_load.iter().take(fpc).enumerate() {
            copy.extend(gap.iter().copied());
            let p = t / shape.nr;
            let rem = t % shape.nr;
            let q = rem / 2;
            let lane = rem % 2;
            let (a, b) = (Value::A(p), Value::B(q));
            copy.push(SlotInstr::Fmla {
                a,
                b,
                lane,
                a_reg: table[c]
                    .iter()
                    .position(|&s| s == scheme.slot_of(a))
                    .unwrap(),
                b_reg: table[c]
                    .iter()
                    .position(|&s| s == scheme.slot_of(b))
                    .unwrap(),
            });
        }
        copy.extend(gap_load[fpc].iter().copied());
        copies.push(copy);
    }

    ScheduledKernel { shape, copies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation::optimal_rotation;

    fn shape() -> KernelShape {
        KernelShape::paper_8x6()
    }

    #[test]
    fn scheduled_kernel_has_figure7_mix() {
        // Per copy: 24 fmla + 7 ldr + 1 prfm.
        let scheme = optimal_rotation(shape(), 8);
        let k = schedule_kernel(&scheme, &ScheduleOptions::default());
        let mix = k.mix();
        assert_eq!(mix.fmla, 24 * 8);
        assert_eq!(mix.ldr, 7 * 8);
        assert_eq!(mix.prfm, 8);
        assert!((mix.arithmetic_fraction() - 24.0 / 31.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_fractions_match_section5a() {
        // Paper: 66.7% for 4x4, 72.7% for 8x4, 77.4% for 8x6.
        let frac = |mr: usize, nr: usize| {
            let f = mr * nr / 2;
            let l = (mr + nr) / 2;
            InstructionMix {
                fmla: f,
                ldr: l,
                prfm: 0,
            }
            .arithmetic_fraction()
        };
        assert!((frac(4, 4) - 0.667).abs() < 1e-3);
        assert!((frac(8, 4) - 0.727).abs() < 1e-3);
        assert!((frac(8, 6) - 0.774).abs() < 1e-3);
    }

    #[test]
    fn schedule_is_valid_with_rotation() {
        let scheme = optimal_rotation(shape(), 8);
        let k = schedule_kernel(&scheme, &ScheduleOptions::default());
        k.validate(&scheme)
            .expect("rotated schedule must be correct");
    }

    #[test]
    fn schedule_is_valid_without_rotation() {
        let scheme = RotationScheme::identity(shape(), 8);
        let k = schedule_kernel(&scheme, &ScheduleOptions::default());
        k.validate(&scheme)
            .expect("identity schedule must be correct");
    }

    #[test]
    fn rotation_improves_raw_distance() {
        let rotated = schedule_kernel(&optimal_rotation(shape(), 8), &ScheduleOptions::default());
        let ident = schedule_kernel(
            &RotationScheme::identity(shape(), 8),
            &ScheduleOptions::default(),
        );
        let (dr, di) = (rotated.min_raw_distance(), ident.min_raw_distance());
        assert!(
            dr > di,
            "rotation must lengthen the worst load->use window: {dr} vs {di}"
        );
        // The paper reports an optimal RAW distance of 9 (Figure 7); our
        // placement must do at least as well.
        assert!(dr >= 9, "RAW distance {dr} below the paper's optimum 9");
    }

    #[test]
    fn loads_spread_at_most_one_per_gap() {
        let scheme = optimal_rotation(shape(), 8);
        let k = schedule_kernel(&scheme, &ScheduleOptions::default());
        for copy in k.copies() {
            let mut run = 0;
            for ins in copy {
                match ins {
                    SlotInstr::Fmla { .. } => run = 0,
                    _ => {
                        run += 1;
                        assert!(run <= 1, "two non-FMA slots in one gap");
                    }
                }
            }
        }
    }

    #[test]
    fn every_copy_loads_each_next_value_once() {
        let scheme = optimal_rotation(shape(), 8);
        let k = schedule_kernel(&scheme, &ScheduleOptions::default());
        for copy in k.copies() {
            let mut loaded: Vec<Value> = copy
                .iter()
                .filter_map(|i| match i {
                    SlotInstr::Load { value, .. } => Some(*value),
                    _ => None,
                })
                .collect();
            loaded.sort();
            let mut expect: Vec<Value> = shape().values().collect();
            expect.sort();
            assert_eq!(loaded, expect);
        }
    }

    #[test]
    fn smaller_kernels_schedule_too() {
        for (mr, nr) in [(8, 4), (4, 4)] {
            let sh = KernelShape { mr, nr };
            // generous pool: double-buffer every value (no rotation needed)
            let scheme = RotationScheme::identity(sh, sh.n_values() + 1);
            let k = schedule_kernel(&scheme, &ScheduleOptions::default());
            k.validate(&scheme).unwrap();
            assert_eq!(k.mix().fmla, sh.fmlas_per_copy());
        }
    }
}
