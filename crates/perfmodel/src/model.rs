//! Section III: the general-purpose performance model.
//!
//! The paper models the execution time of a program as
//!
//! ```text
//! T = F·μ + Σ W_ij·ν_ij + Σ M_ij·η_ij                     (1)
//! ```
//!
//! where `F` is the number of arithmetic operations, `W_ij` the number of
//! words moved between memory-hierarchy levels `i` and `j`, and `M_ij` the
//! number of messages (cache lines). With packed, contiguous data the
//! message count is proportional to the word count (`ΣM ≈ κ·ΣW`), so with
//! `π = Σν + Ση` and the compute-to-memory access ratio `γ = F/W`:
//!
//! ```text
//! T ≤ F·μ + (1+κ)·W·π                                      (3)
//! T_opt ≤ F·μ + (1+κ)·W·π·ψ(γ)                             (4)
//!       = F·(μ + (1+κ)·π·ψ(γ)/γ)                           (5)
//! Perf_opt = F/T_opt ≥ 1 / (μ + (1+κ)·π·ψ(γ)/γ)           (6)
//! ```
//!
//! `ψ(γ)` is the *overlapping factor*: how much of the communication cannot
//! be hidden behind computation. It satisfies `ψ(0)=1`, `ψ(∞)=0` and is
//! monotonically decreasing; the exact shape is machine-dependent, so this
//! module provides the two standard parametric families.

/// Cost parameters of equation (1), all in seconds (or any consistent unit).
#[derive(Clone, Copy, Debug)]
pub struct MachineCosts {
    /// Cost `μ` of a single floating-point operation.
    pub mu: f64,
    /// Aggregate per-word transfer cost `π = Σν + Ση` (inverse bandwidth
    /// plus amortized latency across all hierarchy levels).
    pub pi: f64,
    /// Message-to-word proportionality constant `κ` (≈ 1/words-per-line for
    /// perfectly packed data).
    pub kappa: f64,
}

impl MachineCosts {
    /// Costs for the paper's machine, normalized to cycles: `μ` = cycles per
    /// flop at peak (0.5), `π` = effective cycles per word moved summed over
    /// levels, `κ` = 1/8 (8 doubles per 64-byte line).
    #[must_use]
    pub fn xgene_cycles() -> Self {
        MachineCosts {
            mu: 0.5,
            pi: 1.0,
            kappa: 1.0 / 8.0,
        }
    }
}

/// A parametric overlapping factor `ψ(γ)`.
///
/// Both families satisfy the paper's requirements: `ψ(0) = 1`,
/// `ψ(γ) → 0` as `γ → ∞`, monotonically decreasing.
#[derive(Clone, Copy, Debug)]
pub enum OverlapFactor {
    /// `ψ(γ) = exp(-c·γ)`.
    Exponential {
        /// Decay rate `c > 0`.
        c: f64,
    },
    /// `ψ(γ) = 1 / (1 + c·γ)`.
    Rational {
        /// Slope `c > 0`.
        c: f64,
    },
    /// No overlap at all: `ψ ≡ 1` (reduces (4) to the raw bound (3)).
    None,
}

impl OverlapFactor {
    /// Evaluate `ψ(γ)`.
    #[must_use]
    pub fn eval(&self, gamma: f64) -> f64 {
        assert!(gamma >= 0.0, "gamma must be non-negative");
        match *self {
            OverlapFactor::Exponential { c } => (-c * gamma).exp(),
            OverlapFactor::Rational { c } => 1.0 / (1.0 + c * gamma),
            OverlapFactor::None => 1.0,
        }
    }
}

/// Raw (no-overlap) execution-time bound of equation (3).
///
/// `f` = flop count, `w` = words moved.
#[must_use]
pub fn time_bound_no_overlap(f: f64, w: f64, costs: &MachineCosts) -> f64 {
    f * costs.mu + (1.0 + costs.kappa) * w * costs.pi
}

/// Overlap-aware execution-time bound of equation (4)/(5).
#[must_use]
pub fn time_bound(f: f64, w: f64, costs: &MachineCosts, psi: &OverlapFactor) -> f64 {
    let gamma = if w > 0.0 { f / w } else { f64::INFINITY };
    f * costs.mu + (1.0 + costs.kappa) * w * costs.pi * psi.eval(gamma.min(1e18))
}

/// Performance lower bound of equation (6), in flops per time unit.
///
/// Larger `γ` always gives a larger bound — the paper's central argument
/// for maximizing the compute-to-memory access ratio at every level.
#[must_use]
pub fn perf_lower_bound(gamma: f64, costs: &MachineCosts, psi: &OverlapFactor) -> f64 {
    assert!(gamma > 0.0, "gamma must be positive");
    1.0 / (costs.mu + (1.0 + costs.kappa) * costs.pi * psi.eval(gamma) / gamma)
}

/// Predicted efficiency (fraction of peak) from equation (6):
/// `perf_lower_bound / (1/μ)`.
#[must_use]
pub fn efficiency_lower_bound(gamma: f64, costs: &MachineCosts, psi: &OverlapFactor) -> f64 {
    perf_lower_bound(gamma, costs, psi) * costs.mu
}

/// Fixed scheduling costs of a pooled (ownership-transfer) layer-3
/// runtime, in the same unit as [`MachineCosts`] (cycles for
/// [`MachineCosts::xgene_cycles`]). These extend equation (4) with the
/// terms the paper's spawn-per-GEPP schedule does not have: an epoch
/// barrier (channel round trip + `Arc` reclaim) and a per-task
/// enqueue/dequeue cost.
#[derive(Clone, Copy, Debug)]
pub struct PoolOverheads {
    /// Cost of one epoch barrier: panel `Arc` distribution, done-channel
    /// round trip and the caller's drain loop wakeup.
    pub epoch: f64,
    /// Cost of enqueuing, stealing and returning one grid-cell task.
    pub task: f64,
}

impl PoolOverheads {
    /// Default overheads in cycles (≈25 µs per epoch, ≈1.5 µs per task
    /// at the paper machine's 2.4 GHz). Deliberately conservative: the
    /// dispatcher calibrates the *total* prediction against measured
    /// time at runtime, so only the ratio between the terms matters.
    #[must_use]
    pub fn xgene_cycles() -> Self {
        PoolOverheads {
            epoch: 60_000.0,
            task: 3_600.0,
        }
    }
}

/// Predicted execution time of the pooled runtime: equation (4) split
/// into the part that parallelizes and the part that does not.
///
/// In the ownership-transfer schedule the *caller* packs A and B and
/// stages C (`w_caller` words, serialized), while GEBP compute (`f`
/// flops) divides over `workers`; each of the `epochs` barriers and
/// each of the `tasks` grid cells pays a fixed cost from `overheads`.
/// With `workers == 1` and zero overheads this reduces to
/// [`time_bound`].
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn pooled_time_bound(
    f: f64,
    w_caller: f64,
    workers: usize,
    epochs: f64,
    tasks: f64,
    costs: &MachineCosts,
    psi: &OverlapFactor,
    overheads: &PoolOverheads,
) -> f64 {
    let p = workers.max(1) as f64;
    let gamma = if w_caller > 0.0 {
        f / w_caller
    } else {
        f64::INFINITY
    };
    f * costs.mu / p
        + (1.0 + costs.kappa) * w_caller * costs.pi * psi.eval(gamma.min(1e18))
        + epochs * overheads.epoch
        + tasks * overheads.task
}

#[cfg(test)]
mod tests {
    use super::*;

    const COSTS: MachineCosts = MachineCosts {
        mu: 0.5,
        pi: 1.0,
        kappa: 0.125,
    };

    #[test]
    fn psi_boundary_conditions() {
        for psi in [
            OverlapFactor::Exponential { c: 0.3 },
            OverlapFactor::Rational { c: 0.3 },
        ] {
            assert!((psi.eval(0.0) - 1.0).abs() < 1e-12);
            assert!(psi.eval(1e9) < 1e-6);
        }
        assert_eq!(OverlapFactor::None.eval(123.0), 1.0);
    }

    #[test]
    fn psi_monotone_decreasing() {
        let psi = OverlapFactor::Rational { c: 0.5 };
        let mut last = f64::INFINITY;
        for i in 0..100 {
            let v = psi.eval(i as f64 * 0.25);
            assert!(v <= last);
            last = v;
        }
    }

    #[test]
    fn larger_gamma_larger_perf_bound() {
        // The paper's key claim below eq. (6).
        let psi = OverlapFactor::Rational { c: 0.4 };
        let mut last = 0.0;
        for g in [1.0, 2.0, 4.0, 5.0, 5.33, 6.0, 6.857, 8.0] {
            let p = perf_lower_bound(g, &COSTS, &psi);
            assert!(p > last, "perf bound must grow with gamma");
            last = p;
        }
    }

    #[test]
    fn time_bound_reduces_without_overlap() {
        // With psi = None, eq. (4) degenerates to eq. (3).
        let f = 1e6;
        let w = 2e5;
        assert_eq!(
            time_bound(f, w, &COSTS, &OverlapFactor::None),
            time_bound_no_overlap(f, w, &COSTS)
        );
        // Any overlapping strictly helps when w > 0.
        assert!(
            time_bound(f, w, &COSTS, &OverlapFactor::Rational { c: 0.4 })
                < time_bound_no_overlap(f, w, &COSTS)
        );
    }

    #[test]
    fn efficiency_bound_in_unit_interval() {
        let psi = OverlapFactor::Exponential { c: 0.2 };
        for g in [0.5, 1.0, 4.0, 6.857, 50.0] {
            let e = efficiency_lower_bound(g, &COSTS, &psi);
            assert!(e > 0.0 && e <= 1.0, "efficiency {e} out of range");
        }
    }

    #[test]
    fn zero_words_is_pure_compute() {
        let t = time_bound(100.0, 0.0, &COSTS, &OverlapFactor::Rational { c: 1.0 });
        assert!((t - 50.0).abs() < 1e-9);
    }

    #[test]
    fn pooled_bound_reduces_to_serial_bound() {
        // One worker, no scheduling overheads: the pooled predictor is
        // exactly equation (4).
        let psi = OverlapFactor::Rational { c: 0.4 };
        let no_ov = PoolOverheads {
            epoch: 0.0,
            task: 0.0,
        };
        let f = 2e6;
        let w = 3e5;
        assert_eq!(
            pooled_time_bound(f, w, 1, 4.0, 12.0, &COSTS, &psi, &no_ov),
            time_bound(f, w, &COSTS, &psi)
        );
    }

    #[test]
    fn pooled_bound_monotone_in_workers_and_overheads() {
        let psi = OverlapFactor::Rational { c: 0.4 };
        let ov = PoolOverheads::xgene_cycles();
        let f = 6.7e7; // 2·(256^3)
        let w = 1.3e5;
        let mut last = f64::INFINITY;
        for p in [1, 2, 4, 8] {
            let t = pooled_time_bound(f, w, p, 1.0, 22.0, &COSTS, &psi, &ov);
            assert!(t < last, "more workers must predict less time");
            last = t;
        }
        // More epochs/tasks predict strictly more time.
        let base = pooled_time_bound(f, w, 4, 1.0, 8.0, &COSTS, &psi, &ov);
        assert!(pooled_time_bound(f, w, 4, 5.0, 8.0, &COSTS, &psi, &ov) > base);
        assert!(pooled_time_bound(f, w, 4, 1.0, 80.0, &COSTS, &psi, &ov) > base);
    }

    #[test]
    fn pooled_bound_penalizes_tiny_epochs() {
        // A skinny cached stream (few flops per epoch) must predict
        // slower on the pool than serially — the shape behind the
        // dispatcher's serial fallback.
        let psi = OverlapFactor::Rational { c: 0.4 };
        let ov = PoolOverheads::xgene_cycles();
        // 8×256×256 GEMM, B cached: 24 epochs, ~8 cells each.
        let f = 2.0 * 8.0 * 256.0 * 256.0;
        let w_serial = 8.0 * 256.0 * 6.0; // A repacked per jj panel
        let serial = time_bound(f, w_serial, &COSTS, &psi);
        let pooled = pooled_time_bound(f, w_serial, 4, 24.0, 192.0, &COSTS, &psi, &ov);
        assert!(
            pooled > serial,
            "pool must predict slower on overhead-dominated shapes"
        );
    }
}
