//! Section III: the general-purpose performance model.
//!
//! The paper models the execution time of a program as
//!
//! ```text
//! T = F·μ + Σ W_ij·ν_ij + Σ M_ij·η_ij                     (1)
//! ```
//!
//! where `F` is the number of arithmetic operations, `W_ij` the number of
//! words moved between memory-hierarchy levels `i` and `j`, and `M_ij` the
//! number of messages (cache lines). With packed, contiguous data the
//! message count is proportional to the word count (`ΣM ≈ κ·ΣW`), so with
//! `π = Σν + Ση` and the compute-to-memory access ratio `γ = F/W`:
//!
//! ```text
//! T ≤ F·μ + (1+κ)·W·π                                      (3)
//! T_opt ≤ F·μ + (1+κ)·W·π·ψ(γ)                             (4)
//!       = F·(μ + (1+κ)·π·ψ(γ)/γ)                           (5)
//! Perf_opt = F/T_opt ≥ 1 / (μ + (1+κ)·π·ψ(γ)/γ)           (6)
//! ```
//!
//! `ψ(γ)` is the *overlapping factor*: how much of the communication cannot
//! be hidden behind computation. It satisfies `ψ(0)=1`, `ψ(∞)=0` and is
//! monotonically decreasing; the exact shape is machine-dependent, so this
//! module provides the two standard parametric families.

/// Cost parameters of equation (1), all in seconds (or any consistent unit).
#[derive(Clone, Copy, Debug)]
pub struct MachineCosts {
    /// Cost `μ` of a single floating-point operation.
    pub mu: f64,
    /// Aggregate per-word transfer cost `π = Σν + Ση` (inverse bandwidth
    /// plus amortized latency across all hierarchy levels).
    pub pi: f64,
    /// Message-to-word proportionality constant `κ` (≈ 1/words-per-line for
    /// perfectly packed data).
    pub kappa: f64,
}

impl MachineCosts {
    /// Costs for the paper's machine, normalized to cycles: `μ` = cycles per
    /// flop at peak (0.5), `π` = effective cycles per word moved summed over
    /// levels, `κ` = 1/8 (8 doubles per 64-byte line).
    #[must_use]
    pub fn xgene_cycles() -> Self {
        MachineCosts {
            mu: 0.5,
            pi: 1.0,
            kappa: 1.0 / 8.0,
        }
    }
}

/// A parametric overlapping factor `ψ(γ)`.
///
/// Both families satisfy the paper's requirements: `ψ(0) = 1`,
/// `ψ(γ) → 0` as `γ → ∞`, monotonically decreasing.
#[derive(Clone, Copy, Debug)]
pub enum OverlapFactor {
    /// `ψ(γ) = exp(-c·γ)`.
    Exponential {
        /// Decay rate `c > 0`.
        c: f64,
    },
    /// `ψ(γ) = 1 / (1 + c·γ)`.
    Rational {
        /// Slope `c > 0`.
        c: f64,
    },
    /// No overlap at all: `ψ ≡ 1` (reduces (4) to the raw bound (3)).
    None,
}

impl OverlapFactor {
    /// Evaluate `ψ(γ)`.
    #[must_use]
    pub fn eval(&self, gamma: f64) -> f64 {
        assert!(gamma >= 0.0, "gamma must be non-negative");
        match *self {
            OverlapFactor::Exponential { c } => (-c * gamma).exp(),
            OverlapFactor::Rational { c } => 1.0 / (1.0 + c * gamma),
            OverlapFactor::None => 1.0,
        }
    }
}

/// Raw (no-overlap) execution-time bound of equation (3).
///
/// `f` = flop count, `w` = words moved.
#[must_use]
pub fn time_bound_no_overlap(f: f64, w: f64, costs: &MachineCosts) -> f64 {
    f * costs.mu + (1.0 + costs.kappa) * w * costs.pi
}

/// Overlap-aware execution-time bound of equation (4)/(5).
#[must_use]
pub fn time_bound(f: f64, w: f64, costs: &MachineCosts, psi: &OverlapFactor) -> f64 {
    let gamma = if w > 0.0 { f / w } else { f64::INFINITY };
    f * costs.mu + (1.0 + costs.kappa) * w * costs.pi * psi.eval(gamma.min(1e18))
}

/// Performance lower bound of equation (6), in flops per time unit.
///
/// Larger `γ` always gives a larger bound — the paper's central argument
/// for maximizing the compute-to-memory access ratio at every level.
#[must_use]
pub fn perf_lower_bound(gamma: f64, costs: &MachineCosts, psi: &OverlapFactor) -> f64 {
    assert!(gamma > 0.0, "gamma must be positive");
    1.0 / (costs.mu + (1.0 + costs.kappa) * costs.pi * psi.eval(gamma) / gamma)
}

/// Predicted efficiency (fraction of peak) from equation (6):
/// `perf_lower_bound / (1/μ)`.
#[must_use]
pub fn efficiency_lower_bound(gamma: f64, costs: &MachineCosts, psi: &OverlapFactor) -> f64 {
    perf_lower_bound(gamma, costs, psi) * costs.mu
}

#[cfg(test)]
mod tests {
    use super::*;

    const COSTS: MachineCosts = MachineCosts {
        mu: 0.5,
        pi: 1.0,
        kappa: 0.125,
    };

    #[test]
    fn psi_boundary_conditions() {
        for psi in [
            OverlapFactor::Exponential { c: 0.3 },
            OverlapFactor::Rational { c: 0.3 },
        ] {
            assert!((psi.eval(0.0) - 1.0).abs() < 1e-12);
            assert!(psi.eval(1e9) < 1e-6);
        }
        assert_eq!(OverlapFactor::None.eval(123.0), 1.0);
    }

    #[test]
    fn psi_monotone_decreasing() {
        let psi = OverlapFactor::Rational { c: 0.5 };
        let mut last = f64::INFINITY;
        for i in 0..100 {
            let v = psi.eval(i as f64 * 0.25);
            assert!(v <= last);
            last = v;
        }
    }

    #[test]
    fn larger_gamma_larger_perf_bound() {
        // The paper's key claim below eq. (6).
        let psi = OverlapFactor::Rational { c: 0.4 };
        let mut last = 0.0;
        for g in [1.0, 2.0, 4.0, 5.0, 5.33, 6.0, 6.857, 8.0] {
            let p = perf_lower_bound(g, &COSTS, &psi);
            assert!(p > last, "perf bound must grow with gamma");
            last = p;
        }
    }

    #[test]
    fn time_bound_reduces_without_overlap() {
        // With psi = None, eq. (4) degenerates to eq. (3).
        let f = 1e6;
        let w = 2e5;
        assert_eq!(
            time_bound(f, w, &COSTS, &OverlapFactor::None),
            time_bound_no_overlap(f, w, &COSTS)
        );
        // Any overlapping strictly helps when w > 0.
        assert!(
            time_bound(f, w, &COSTS, &OverlapFactor::Rational { c: 0.4 })
                < time_bound_no_overlap(f, w, &COSTS)
        );
    }

    #[test]
    fn efficiency_bound_in_unit_interval() {
        let psi = OverlapFactor::Exponential { c: 0.2 };
        for g in [0.5, 1.0, 4.0, 6.857, 50.0] {
            let e = efficiency_lower_bound(g, &COSTS, &psi);
            assert!(e > 0.0 && e <= 1.0, "efficiency {e} out of range");
        }
    }

    #[test]
    fn zero_words_is_pure_compute() {
        let t = time_bound(100.0, 0.0, &COSTS, &OverlapFactor::Rational { c: 1.0 });
        assert!((t - 50.0).abs() < 1e-9);
    }
}
