//! # perfmodel
//!
//! The performance model and analytic design machinery of the ICPP'15 paper
//! *"Design and Implementation of a Highly Efficient DGEMM for 64-bit ARMv8
//! Multi-Core Processors"*, Sections III and IV.
//!
//! The paper's central claim is that DGEMM performance on this machine is
//! governed by the *compute-to-memory access ratio* `γ = F / W` (flops per
//! word moved), and that every performance-critical parameter of the GEBP
//! inner kernel — the register block `mr×nr`, the cache blocks `kc`, `mc`,
//! `nc`, the register allocation of the unrolled inner loop, and the
//! placement of load instructions — can be derived *analytically* from the
//! machine description rather than by auto-tuning.
//!
//! Modules, in the order the paper develops them:
//!
//! - [`arch`] — the machine description (register file, cache geometry,
//!   core topology) with the paper's X-Gene-class platform as the default.
//! - [`model`] — Section III: the time bound `T ≤ Fμ + (1+κ)Wπψ(γ)`
//!   (equations (1)–(6)) and the performance lower bound it implies.
//! - [`ratio`] — the γ expressions for the register kernel, GESS/GEBS and
//!   GEBP (equations (7), (8), (14), (16)).
//! - [`regblock`] — Section IV-A: the register-block optimizer (equations
//!   (8)–(11)) and the Figure 5 γ surface. Yields `mr×nr = 8×6`, `nrf = 6`,
//!   `γ = 48/7 ≈ 6.857` on the paper's machine.
//! - [`rotation`] — the software register-rotation scheduler (equation
//!   (12), Table I).
//! - [`schedule`] — the load/FMA interleaving scheduler (equation (13),
//!   Figure 7).
//! - [`cacheblock`] — Section IV-B/C: the `kc`/`mc`/`nc` solvers honouring
//!   set associativity and LRU replacement (equations (15), (17)–(20)),
//!   for serial and multi-threaded configurations. Reproduces Table III.
//! - [`prefetch`] — the PREFA/PREFB prefetch-distance computation.
//! - [`tuning`] — beyond the paper: shape-class quantization and
//!   model-seeded candidate enumeration for the closed-loop autotuner
//!   (`dgemm-core::autotune`), following the "model prunes the search"
//!   approach of Veras et al. and Martínez et al. (see PAPERS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod cacheblock;
pub mod model;
pub mod prefetch;
pub mod ratio;
pub mod regblock;
pub mod rotation;
pub mod schedule;
pub mod tuning;

pub use arch::MachineDesc;
