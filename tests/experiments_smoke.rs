//! Smoke tests over the Section V experiment drivers: every
//! table/figure generator runs on a reduced grid and its headline
//! qualitative claims hold.

use simgemm::estimate::{Estimator, SimConfig};
use simgemm::experiments::{figure13, figure14, l1_study, performance_sweep, table5, table6};
use simgemm::kernelsim::KernelVariant;

fn sizes() -> Vec<usize> {
    vec![512, 1024]
}

#[test]
fn figure11_and_12_shapes() {
    let mut est = Estimator::new();
    let serial = performance_sweep(&mut est, &sizes(), 1);
    let parallel = performance_sweep(&mut est, &sizes(), 8);
    // 8x6 leads both settings; every kernel gains from 8 threads
    for (s, p) in serial.iter().zip(&parallel) {
        assert!(p.peak_gflops() > 4.0 * s.peak_gflops(), "{}", s.label);
    }
    let peak = |curves: &[simgemm::experiments::Curve], label: &str| {
        curves
            .iter()
            .find(|c| c.label == label)
            .unwrap()
            .peak_gflops()
    };
    assert!(peak(&serial, "OpenBLAS-8x6") > peak(&serial, "OpenBLAS-8x4"));
    assert!(peak(&serial, "OpenBLAS-8x4") > peak(&serial, "OpenBLAS-4x4"));
    assert!(peak(&serial, "OpenBLAS-8x6") > peak(&serial, "ATLAS-5x5"));
    assert!(peak(&parallel, "OpenBLAS-8x6") > peak(&parallel, "OpenBLAS-8x4"));
    assert!(peak(&parallel, "OpenBLAS-8x6") > peak(&parallel, "ATLAS-5x5"));
}

#[test]
fn table5_8x6_wins_everything() {
    let mut est = Estimator::new();
    let rows = table5(&mut est, &sizes());
    let best = &rows[0];
    assert_eq!(best.label, "OpenBLAS-8x6");
    for r in &rows[1..] {
        assert!(best.peak_serial >= r.peak_serial, "{}", r.label);
        assert!(best.peak_parallel >= r.peak_parallel, "{}", r.label);
        assert!(best.avg_serial >= r.avg_serial, "{}", r.label);
        assert!(best.avg_parallel >= r.avg_parallel, "{}", r.label);
    }
    // serial efficiency exceeds parallel, as in the paper
    assert!(best.peak_serial >= best.peak_parallel);
}

#[test]
fn figure13_rotation_wins() {
    let mut est = Estimator::new();
    let curves = figure13(&mut est, &sizes());
    assert_eq!(curves.len(), 4);
    for pair in curves.chunks(2) {
        assert!(
            pair[0].avg_efficiency() > pair[1].avg_efficiency(),
            "{} must beat {}",
            pair[0].label,
            pair[1].label
        );
    }
}

#[test]
fn figure14_near_linear_scaling() {
    let mut est = Estimator::new();
    let curves = figure14(&mut est, &[1024]);
    let g: Vec<f64> = curves.iter().map(|c| c.peak_gflops()).collect();
    assert!(g[1] / g[0] > 1.85, "2-thread speedup {}", g[1] / g[0]);
    assert!(g[2] / g[0] > 3.5, "4-thread speedup {}", g[2] / g[0]);
    assert!(g[3] / g[0] > 6.5, "8-thread speedup {}", g[3] / g[0]);
}

#[test]
fn table6_analytic_blocks_best_or_tied() {
    let mut est = Estimator::new();
    let rows = table6(&mut est, &sizes());
    for setting in ["Serial", "Parallel (8 Threads)"] {
        let ours = rows
            .iter()
            .find(|r| r.ours && r.setting == setting)
            .unwrap();
        for r in rows.iter().filter(|r| r.setting == setting && !r.ours) {
            assert!(
                ours.peak >= r.peak - 0.005,
                "{setting}: {} ({}) must not lose to {} ({})",
                ours.blocks,
                ours.peak,
                r.blocks,
                r.peak
            );
        }
    }
}

#[test]
fn l1_study_orderings() {
    let mut est = Estimator::new();
    let rows = l1_study(&mut est, &[768]);
    let loads = |label: &str, t: usize| {
        rows.iter()
            .find(|r| r.label.contains(label) && r.threads == t)
            .unwrap()
            .points[0]
            .1
    };
    // Figure 15: 8x6 fewest loads, 4x4 most, both settings
    for t in [1usize, 8] {
        assert!(loads("8x6", t) < loads("8x4", t));
        assert!(loads("8x4", t) < loads("4x4", t));
    }
    // Table VII: 8x4 has the lowest miss rate (as in the paper), yet
    // Figure 11/12 has 8x6 fastest — the paper's point that load count,
    // not miss rate, is what matters here.
    let rate = |label: &str, t: usize| {
        rows.iter()
            .find(|r| r.label.contains(label) && r.threads == t)
            .unwrap()
            .points[0]
            .2
    };
    assert!(rate("8x4", 1) < rate("8x6", 1));
    assert!(rate("8x4", 1) < rate("4x4", 1));
}

#[test]
fn estimates_bounded_by_peak() {
    let mut est = Estimator::new();
    for v in KernelVariant::FIGURE11 {
        for t in [1usize, 2, 4, 8] {
            let cfg = SimConfig::paper(v, t);
            let p = est.estimate(&cfg, 640);
            assert!(
                p.efficiency > 0.3 && p.efficiency < 1.0,
                "{} t={t}: {}",
                v.label(),
                p.efficiency
            );
            assert!(p.gflops <= 4.8 * t as f64 + 1e-9);
        }
    }
}
