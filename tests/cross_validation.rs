//! Cross-crate integration tests: the generated A64 kernel streams, the
//! portable microkernels and the naive oracle must all compute the same
//! numbers; the analytic model, the simulator and the library must agree
//! on the configuration they describe.

use armsim::core::CoreSim;
use armsim::machine::SimMachine;
use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::{run_microkernel, MicroKernelKind};
use dgemm_core::pack::{PackedA, PackedB};
use dgemm_core::reference::naive_gemm;
use dgemm_core::tile::TileMut;
use dgemm_core::util::{gemm_tolerance, SplitMix64};
use dgemm_core::Transpose;
use kernels::regkernel::{
    generate_microkernel_call, padded_a_bytes, padded_b_bytes, GebpAddrs, KernelSpec,
};

/// The generated (simulated-assembly) kernel and the portable Rust
/// microkernel must agree to rounding error. (Not bitwise: the A64
/// kernel accumulates into the loaded C tile with fused multiply-adds,
/// while the portable kernel sums into a zero accumulator and folds C in
/// once at write-back — same k-order, different rounding points.)
#[test]
fn simulated_kernel_matches_portable_microkernel() {
    let cases = [
        (KernelSpec::paper_8x6(Some(512)), MicroKernelKind::Mk8x6),
        (
            KernelSpec::paper_8x6_no_rotation(None),
            MicroKernelKind::Mk8x6,
        ),
        (KernelSpec::paper_8x4(), MicroKernelKind::Mk8x4),
        (KernelSpec::paper_4x4(), MicroKernelKind::Mk4x4),
    ];
    for (spec, kind) in cases {
        let (mr, nr) = (kind.mr(), kind.nr());
        let kc = 96usize;
        let a = Matrix::random(mr, kc, 10);
        let b = Matrix::random(kc, nr, 11);
        let c0 = Matrix::random(mr, nr, 12);

        // portable path
        let mut pa = PackedA::new(mr);
        pa.pack(&a.view(), Transpose::No, 0, 0, mr, kc);
        let mut pb = PackedB::new(nr);
        pb.pack(&b.view(), Transpose::No, 0, 0, kc, nr);
        let mut c_port = c0.clone();
        {
            let mut tile = TileMut::from_slice(mr, nr, mr, c_port.as_mut_slice());
            run_microkernel(kind, kc, pa.sliver(0), pb.sliver(0), 1.0, &mut tile, mr, nr);
        }

        // simulated path: same packed data placed in simulated memory
        let mut core = CoreSim::new(0, 16 << 20);
        let a_addr = core.mem.alloc(padded_a_bytes(mr, kc), 64);
        let b_addr = core.mem.alloc(padded_b_bytes(nr, kc), 64);
        let c_addr = core.mem.alloc(mr * nr * 8, 64);
        core.mem.store_slice(a_addr, pa.sliver(0));
        core.mem.store_slice(b_addr, pb.sliver(0));
        core.mem.store_slice(c_addr, c0.as_slice());
        let stream = generate_microkernel_call(
            &spec,
            kc,
            &GebpAddrs {
                a: a_addr,
                b: b_addr,
                c: c_addr,
                ldc_bytes: (mr * 8) as u64,
            },
        );
        let mut machine = SimMachine::xgene();
        core.run(&stream, &mut machine);
        let c_sim = core.mem.load_slice(c_addr, mr * nr);

        for (s, p) in c_sim.iter().zip(c_port.as_slice()) {
            assert!(
                (s - p).abs() <= 1e-12 * (1.0 + p.abs()),
                "{}: simulated {s} vs portable {p}",
                kind.label()
            );
        }
    }
}

/// Full blocked DGEMM vs the naive oracle across a randomized matrix of
/// shapes, kernels, transposes, scalars and thread counts.
#[test]
fn randomized_dgemm_against_oracle() {
    let mut rng = SplitMix64::new(20260706);
    for trial in 0..40 {
        let m = 1 + rng.next_below(160);
        let n = 1 + rng.next_below(160);
        let k = 1 + rng.next_below(160);
        let kind = MicroKernelKind::ALL[rng.next_below(4)];
        let ta = if rng.next_below(2) == 0 {
            Transpose::No
        } else {
            Transpose::Yes
        };
        let tb = if rng.next_below(2) == 0 {
            Transpose::No
        } else {
            Transpose::Yes
        };
        let alpha = (rng.next_f64() - 0.5) * 4.0;
        let beta = [0.0, 1.0, -1.5][rng.next_below(3)];
        let threads = [1, 2, 4][rng.next_below(3)];

        let (ar, ac) = match ta {
            Transpose::No => (m, k),
            Transpose::Yes => (k, m),
        };
        let (br, bc) = match tb {
            Transpose::No => (k, n),
            Transpose::Yes => (n, k),
        };
        let a = Matrix::random(ar, ac, 100 + trial);
        let b = Matrix::random(br, bc, 200 + trial);
        let c0 = Matrix::random(m, n, 300 + trial);

        let mut want = c0.clone();
        naive_gemm(
            ta,
            tb,
            alpha,
            &a.view(),
            &b.view(),
            beta,
            &mut want.view_mut(),
        );

        let mut got = c0.clone();
        let mut cfg = GemmConfig::for_kernel(kind, threads);
        // small blocks to cross boundaries often
        cfg = cfg.with_blocks(
            17 + rng.next_below(40),
            kind.mr() * (1 + rng.next_below(4)),
            kind.nr() * (1 + rng.next_below(6)),
        );
        gemm(
            ta,
            tb,
            alpha,
            &a.view(),
            &b.view(),
            beta,
            &mut got.view_mut(),
            &cfg,
        );

        let err = got.max_abs_diff(&want);
        let tol = gemm_tolerance(k, 4.0);
        assert!(
            err < tol,
            "trial {trial}: {} m={m} n={n} k={k} ta={ta:?} tb={tb:?} alpha={alpha} \
             beta={beta} threads={threads} blocks={}: err {err} > tol {tol}",
            kind.label(),
            cfg.blocks.label()
        );
    }
}

/// The default configuration is exactly the paper's serial setup, and
/// the parallel configuration matches Table III.
#[test]
fn configurations_match_paper_tables() {
    let serial = GemmConfig::default();
    assert_eq!(serial.blocks.label(), "8x6x512x56x1920");
    let parallel = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, 8);
    assert_eq!(parallel.blocks.label(), "8x6x512x24x1792");
}

/// A large single multiplication through the paper's full blocking
/// (several kc panels and mc blocks) against the oracle.
#[test]
fn large_problem_full_paper_blocking() {
    let (m, n, k) = (300, 250, 1200);
    let a = Matrix::random(m, k, 5);
    let b = Matrix::random(k, n, 6);
    let mut want = Matrix::zeros(m, n);
    naive_gemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a.view(),
        &b.view(),
        0.0,
        &mut want.view_mut(),
    );
    for threads in [1usize, 8] {
        let mut got = Matrix::zeros(m, n);
        let cfg = GemmConfig::for_kernel(MicroKernelKind::Mk8x6, threads);
        gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut got.view_mut(),
            &cfg,
        );
        assert!(got.max_abs_diff(&want) < gemm_tolerance(k, 1.0));
    }
}
