//! Cross-routine consistency of the Level-3 / factorization stack: the
//! algebraic identities that tie DGEMM, DSYRK, DSYMM, DTRSM, LU and
//! Cholesky together must hold across kernels and thread counts.

use dgemm_core::cholesky::{cholesky, cholesky_solve};
use dgemm_core::gemm::{gemm, GemmConfig};
use dgemm_core::level3::{dsymm, dsyrk, dtrsm, Diag, UpLo};
use dgemm_core::lu::{hpl_residual, lu_factor};
use dgemm_core::matrix::Matrix;
use dgemm_core::microkernel::MicroKernelKind;
use dgemm_core::reference::naive_gemm;
use dgemm_core::{Parallelism, Transpose};

fn spd(n: usize, seed: u64) -> Matrix {
    let g = Matrix::random(n, n, seed);
    let mut ggt = Matrix::zeros(n, n);
    naive_gemm(
        Transpose::No,
        Transpose::Yes,
        1.0,
        &g.view(),
        &g.view(),
        0.0,
        &mut ggt.view_mut(),
    );
    Matrix::from_fn(n, n, |i, j| {
        ggt.get(i, j) + if i == j { n as f64 } else { 0.0 }
    })
}

/// `dsyrk(A) == tril(A·Aᵀ)` computed through plain gemm, for every
/// kernel.
#[test]
fn syrk_equals_gemm_triangle_across_kernels() {
    let n = 60;
    let k = 33;
    let a = Matrix::random(n, k, 1);
    let mut full = Matrix::zeros(n, n);
    naive_gemm(
        Transpose::No,
        Transpose::Yes,
        1.0,
        &a.view(),
        &a.view(),
        0.0,
        &mut full.view_mut(),
    );
    for kind in MicroKernelKind::ALL {
        let cfg = GemmConfig::for_kernel(kind, 1);
        let mut c = Matrix::zeros(n, n);
        dsyrk(
            UpLo::Lower,
            Transpose::No,
            1.0,
            &a.view(),
            0.0,
            &mut c.view_mut(),
            &cfg,
        )
        .unwrap();
        for i in 0..n {
            for j in 0..=i {
                assert!(
                    (c.get(i, j) - full.get(i, j)).abs() < 1e-9,
                    "{} ({i},{j})",
                    kind.label()
                );
            }
        }
    }
}

/// Cholesky of `A` then `dsymm` with the reconstructed `L·Lᵀ` round-trips
/// through the symmetric multiply.
#[test]
fn cholesky_dsymm_roundtrip() {
    let n = 72;
    let cfg = GemmConfig::default();
    let a = spd(n, 2);
    let l = cholesky(&a, &cfg).unwrap();
    // reconstruct A's lower triangle via dsyrk on L
    let mut llt = Matrix::zeros(n, n);
    dsyrk(
        UpLo::Lower,
        Transpose::No,
        1.0,
        &l.view(),
        0.0,
        &mut llt.view_mut(),
        &cfg,
    )
    .unwrap();
    // dsymm reads only the stored triangle, so feeding llt (garbage upper
    // = zeros) must act like full A
    let x = Matrix::random(n, 5, 3);
    let mut want = Matrix::zeros(n, 5);
    naive_gemm(
        Transpose::No,
        Transpose::No,
        1.0,
        &a.view(),
        &x.view(),
        0.0,
        &mut want.view_mut(),
    );
    let mut got = Matrix::zeros(n, 5);
    dsymm(
        UpLo::Lower,
        1.0,
        &llt.view(),
        &x.view(),
        0.0,
        &mut got.view_mut(),
        &cfg,
    )
    .unwrap();
    assert!(
        got.max_abs_diff(&want) < 1e-8,
        "{}",
        got.max_abs_diff(&want)
    );
}

/// LU and Cholesky must agree on the solution of an SPD system.
#[test]
fn lu_and_cholesky_agree_on_spd_systems() {
    let n = 90;
    let cfg = GemmConfig::default();
    let a = spd(n, 4);
    let b = Matrix::random(n, 2, 5);
    let x_lu = lu_factor(&a, &cfg).unwrap().solve(&b, &cfg).unwrap();
    let l = cholesky(&a, &cfg).unwrap();
    let x_chol = cholesky_solve(&l, &b, &cfg).unwrap();
    assert!(
        x_lu.max_abs_diff(&x_chol) < 1e-8,
        "{}",
        x_lu.max_abs_diff(&x_chol)
    );
    assert!(hpl_residual(&a, &x_lu, &b) < 10.0);
}

/// `dtrsm` inverts the multiplication it is defined against:
/// `trsm(L, L·X) == X` for every uplo/trans/diag combination.
#[test]
fn trsm_inverts_triangular_multiply() {
    let m = 70;
    let n = 9;
    let cfg = GemmConfig::default();
    let base: Matrix = Matrix::random(m, m, 6);
    for uplo in [UpLo::Lower, UpLo::Upper] {
        for trans in [Transpose::No, Transpose::Yes] {
            for diag in [Diag::NonUnit, Diag::Unit] {
                let tri = Matrix::from_fn(m, m, |i, j| {
                    let stored = match uplo {
                        UpLo::Lower => i >= j,
                        UpLo::Upper => i <= j,
                    };
                    if i == j {
                        if diag == Diag::Unit {
                            1.0
                        } else {
                            2.0 + base.get(i, j).abs()
                        }
                    } else if stored {
                        0.4 * base.get(i, j)
                    } else {
                        0.0
                    }
                });
                let x = Matrix::random(m, n, 7);
                let mut b = Matrix::zeros(m, n);
                naive_gemm(
                    trans,
                    Transpose::No,
                    1.0,
                    &tri.view(),
                    &x.view(),
                    0.0,
                    &mut b.view_mut(),
                );
                dtrsm(uplo, trans, diag, 1.0, &tri.view(), &mut b.view_mut(), &cfg).unwrap();
                assert!(
                    b.max_abs_diff(&x) < 1e-8,
                    "{uplo:?}/{trans:?}/{diag:?}: {}",
                    b.max_abs_diff(&x)
                );
            }
        }
    }
}

/// Threaded factorizations must match serial ones exactly (same
/// arithmetic, different scheduling of disjoint tiles).
#[test]
fn threaded_factorizations_match_serial() {
    let n = 150;
    let a = spd(n, 8);
    let serial = GemmConfig::default();
    let threaded = GemmConfig::default().with_parallelism(Parallelism::from_threads(4));
    let l1 = cholesky(&a, &serial).unwrap();
    let l2 = cholesky(&a, &threaded).unwrap();
    assert!(l1.max_abs_diff(&l2) < 1e-11);
    let f1 = lu_factor(&a, &serial).unwrap();
    let f2 = lu_factor(&a, &threaded).unwrap();
    assert_eq!(f1.pivots, f2.pivots);
    assert!(f1.lu.max_abs_diff(&f2.lu) < 1e-11);
}

/// Batched GEMM with a shared B equals per-element GEMM calls.
#[test]
fn batch_equals_loop_of_gemms() {
    use dgemm_core::batch::gemm_batch_shared_b;
    let (m, n, k, batch) = (40, 35, 30, 5);
    let a_mats: Vec<Matrix> = (0..batch)
        .map(|i| Matrix::random(m, k, 10 + i as u64))
        .collect();
    let b = Matrix::random(k, n, 20);
    let cfg = GemmConfig::default();

    let mut want: Vec<Matrix> = (0..batch).map(|_| Matrix::zeros(m, n)).collect();
    for (a, c) in a_mats.iter().zip(want.iter_mut()) {
        gemm(
            Transpose::No,
            Transpose::No,
            1.0,
            &a.view(),
            &b.view(),
            0.0,
            &mut c.view_mut(),
            &cfg,
        );
    }

    let mut got: Vec<Matrix> = (0..batch).map(|_| Matrix::zeros(m, n)).collect();
    let a_views: Vec<_> = a_mats.iter().map(Matrix::view).collect();
    let mut c_views: Vec<_> = got.iter_mut().map(Matrix::view_mut).collect();
    gemm_batch_shared_b(
        1.0,
        &a_views,
        Transpose::No,
        &b.view(),
        0.0,
        &mut c_views,
        &cfg,
    )
    .unwrap();
    drop(c_views);

    for (g, w) in got.iter().zip(&want) {
        assert_eq!(
            g.max_abs_diff(w),
            0.0,
            "identical code path, identical bits"
        );
    }
}
