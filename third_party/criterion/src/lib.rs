//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build container has no access to a crates registry, so the real
//! crate cannot be fetched. This stub implements the subset of the
//! criterion API the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, benchmark groups, `bench_function` /
//! `bench_with_input`, `Throughput`, `BenchmarkId` — as a simple
//! wall-clock harness: each benchmark is warmed up, timed over an
//! adaptive iteration count, and reported as a median time per
//! iteration plus derived throughput.
//!
//! Results are also appended as JSON lines to `BENCH_<group>.json`
//! (in `$BENCH_JSON_DIR`, defaulting to the current directory) so runs
//! can be diffed mechanically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Identifier that is only a parameter value.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    total: Duration,
    iters: u64,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `routine`, choosing the iteration count adaptively so the
    /// measurement fills the configured measurement window.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and calibration: run until 10ms or 3 iterations.
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_iters < 3 || calib_start.elapsed() < Duration::from_millis(10) {
            black_box(routine());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let target = self.measurement_time.as_secs_f64();
        let iters = ((target / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total = start.elapsed();
        self.iters = iters;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility (the stub has no sampling).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target measurement window per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        let report = Report::new(&self.name, &id.id, &bencher, self.throughput);
        report.print();
        self.criterion.reports.push(report);
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group, writing its JSON line report.
    pub fn finish(&mut self) {
        self.criterion.write_json(&self.name);
    }
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {
    reports: Vec<Report>,
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: 100,
            measurement_time: Duration::from_millis(400),
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.benchmark_group(id.id.clone()).bench_function(id, f);
        self
    }

    fn write_json(&mut self, group: &str) {
        let dir = std::env::var("BENCH_JSON_DIR").unwrap_or_else(|_| ".".into());
        let path = std::path::Path::new(&dir)
            .join(format!("BENCH_{}.json", group.replace(['/', ' '], "_")));
        let mut lines = String::new();
        for r in self.reports.iter().filter(|r| r.group == group) {
            lines.push_str(&r.json_line());
            lines.push('\n');
        }
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(lines.as_bytes());
        }
    }
}

struct Report {
    group: String,
    id: String,
    ns_per_iter: f64,
    iters: u64,
    throughput: Option<Throughput>,
}

impl Report {
    fn new(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) -> Self {
        Report {
            group: group.to_owned(),
            id: id.to_owned(),
            ns_per_iter: if b.iters == 0 {
                f64::NAN
            } else {
                b.total.as_nanos() as f64 / b.iters as f64
            },
            iters: b.iters,
            throughput,
        }
    }

    fn rate(&self) -> Option<String> {
        let per_sec = |count: u64| count as f64 / (self.ns_per_iter * 1e-9);
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                Some(format!("{:.3} GiB/s", per_sec(n) / (1u64 << 30) as f64))
            }
            Some(Throughput::Elements(n)) => Some(format!("{:.3} Melem/s", per_sec(n) / 1e6)),
            None => None,
        }
    }

    fn print(&self) {
        let rate = self.rate().map(|r| format!("   {r}")).unwrap_or_default();
        eprintln!(
            "{:<44} {:>14.1} ns/iter  ({} iters){rate}",
            self.id, self.ns_per_iter, self.iters
        );
    }

    fn json_line(&self) -> String {
        let thr = match self.throughput {
            Some(Throughput::Bytes(n)) => format!(",\"bytes\":{n}"),
            Some(Throughput::Elements(n)) => format!(",\"elements\":{n}"),
            None => String::new(),
        };
        format!(
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"ns_per_iter\":{:.1},\"iters\":{}{thr}}}",
            self.group, self.id, self.ns_per_iter, self.iters
        )
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        {
            let mut group = c.benchmark_group("stub-selftest");
            group.measurement_time(Duration::from_millis(20));
            group.throughput(Throughput::Elements(100));
            group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
            group.finish();
        }
        assert_eq!(c.reports.len(), 1);
        assert!(c.reports[0].ns_per_iter > 0.0);
        assert!(c.reports[0].iters > 0);
        let _ = std::fs::remove_file("BENCH_stub-selftest.json");
    }
}
