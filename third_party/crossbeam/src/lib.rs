//! Offline stand-in for [crossbeam](https://crates.io/crates/crossbeam).
//!
//! The build container has no access to a crates registry, so the real
//! crate cannot be fetched. This stub provides the one facility the
//! workspace uses — `crossbeam::channel`'s unbounded MPMC channel with
//! cloneable receivers and blocking (condvar-parked) `recv` — in safe
//! std Rust. Semantics match crossbeam-channel for the covered subset:
//! FIFO delivery, `recv` errors once all senders are dropped and the
//! queue is drained, `send` errors once all receivers are dropped.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
