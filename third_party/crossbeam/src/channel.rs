//! Unbounded MPMC channel: `Mutex<VecDeque>` + `Condvar`.
//!
//! Blocked receivers park on the condvar; senders notify one parked
//! receiver per message. Not lock-free like the real crossbeam, but the
//! worker pool built on it holds the lock only for queue push/pop, and
//! pool tasks are coarse (whole GEBP block runs), so contention on the
//! channel is negligible against the work it schedules.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is drained and
/// every sender is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (senders still connected).
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Create an unbounded MPMC channel.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The sending half; cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueue a message, waking one parked receiver.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut queue = self.shared.queue.lock().expect("channel poisoned");
        queue.push_back(value);
        drop(queue);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake every parked receiver so they observe
            // the disconnect.
            self.shared.ready.notify_all();
        }
    }
}

/// The receiving half; cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Dequeue a message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().expect("channel poisoned");
        if let Some(value) = queue.pop_front() {
            return Ok(value);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Dequeue a message, parking until one arrives or all senders are
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self.shared.ready.wait(queue).expect("channel poisoned");
        }
    }

    /// Dequeue a message, parking at most `timeout` before giving up.
    ///
    /// Recomputes the remaining budget after every condvar wake so
    /// spurious wakeups cannot extend the deadline.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().expect("channel poisoned");
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _result) = self
                .shared
                .ready
                .wait_timeout(queue, remaining)
                .expect("channel poisoned");
            queue = guard;
        }
    }

    /// Blocking iterator over messages until disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv(), Ok(i));
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        let n_producers = 4;
        let per = 250;
        let consumed: Vec<usize> = std::thread::scope(|scope| {
            for p in 0..n_producers {
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..per {
                        tx.send(p * per + i).unwrap();
                    }
                });
            }
            drop(tx);
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    scope.spawn(move || rx.iter().collect::<Vec<_>>())
                })
                .collect();
            consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        let mut all = consumed;
        all.sort_unstable();
        assert_eq!(all, (0..n_producers * per).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(11).unwrap();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Ok(11)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded::<&'static str>();
        std::thread::scope(|scope| {
            let h = scope.spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send("wake").unwrap();
            assert_eq!(h.join().unwrap(), "wake");
        });
    }
}
