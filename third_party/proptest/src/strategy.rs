//! The strategy trait and the primitive strategies / combinators the
//! workspace's suites use.

use crate::test_runner::TestRng;

/// A source of random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy
/// is simply a sampling function over the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: core::fmt::Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value through `f`.
    fn prop_map<O: core::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + core::fmt::Debug>(pub T);

impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform booleans (`prop::bool::ANY`).
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform selection from a fixed list (`prop::sample::select`).
#[derive(Clone, Debug)]
pub struct Select<T: Clone + core::fmt::Debug> {
    pub(crate) values: Vec<T>,
}

impl<T: Clone + core::fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.values[rng.below(self.values.len() as u64) as usize].clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: core::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The result of `prop::collection::vec`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Type-erased strategy arm, used by [`Union`] (`prop_oneof!`).
type DynArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Uniform choice between several strategies with a common value type.
pub struct Union<V> {
    arms: Vec<DynArm<V>>,
}

impl<V: core::fmt::Debug> Union<V> {
    /// Build a union from type-erased arms (see [`Union::arm`]).
    #[must_use]
    pub fn new(arms: Vec<DynArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }

    /// Erase one strategy into a sampling closure.
    pub fn arm<S: Strategy<Value = V> + 'static>(strat: S) -> DynArm<V> {
        Box::new(move |rng| strat.sample(rng))
    }
}

impl<V: core::fmt::Debug> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.arms.len() as u64) as usize;
        (self.arms[pick])(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                let off = rng.below(span);
                #[allow(clippy::cast_possible_wrap)]
                {
                    self.start.wrapping_add(off as $ty)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $ty;
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
