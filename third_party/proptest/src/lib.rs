//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build container has no access to a crates registry, so the real
//! crate cannot be fetched. This stub implements the exact subset of the
//! proptest API the workspace's test suites use — `proptest!`,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, `prop_oneof!`,
//! range/tuple/map/select/vec/bool strategies and `ProptestConfig` — on
//! top of a deterministic splitmix64 generator, so the property tests
//! genuinely execute (with reproducible cases) instead of being
//! compiled out.
//!
//! Shrinking is intentionally not implemented: on failure the macro
//! panics with the case index, and the deterministic generator makes
//! the case replayable by rerunning the same test binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Runner configuration (case count only, which is all the workspace
/// configures).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Strategy combinators and primitive strategies, mirroring the
/// `proptest::prelude::prop` module paths used by the test suites.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        /// Uniformly random booleans.
        pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
    }

    /// Sampling strategies.
    pub mod sample {
        use crate::strategy::Select;

        /// Uniformly select one of the given values.
        pub fn select<T: Clone + core::fmt::Debug>(values: Vec<T>) -> Select<T> {
            assert!(!values.is_empty(), "select requires at least one value");
            Select { values }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};

        /// A `Vec` whose length is drawn from `len` and whose elements
        /// are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }
    }
}

/// The prelude, as imported by every suite (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Generate one deterministic property-test function per `fn` item.
///
/// Mirrors proptest's surface syntax: an optional
/// `#![proptest_config(..)]` header followed by `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(err) = result {
                        ::core::panic!(
                            "property {} failed at deterministic case {}/{}: {}",
                            stringify!($name), case, cfg.cases, err
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Skip the current case unless `cond` holds (the stub counts skipped
/// cases as passes; there is no rejection budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Union::arm($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3usize..17,
            y in -2.0f64..2.0,
            z in 0u64..5,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y out of range: {y}");
            prop_assert!(z < 5);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0u64..8).prop_map(|n| n * 2), 1..20),
            pick in prop::sample::select(vec![1usize, 2, 4]),
            flag in prop::bool::ANY,
            mixed in prop_oneof![(0u64..4).prop_map(|x| x as i64), (0u64..4).prop_map(|x| -(x as i64))],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|n| n % 2 == 0));
            prop_assert!([1usize, 2, 4].contains(&pick));
            prop_assume!(flag || v[0] % 2 == 0);
            prop_assert!((-4..4).contains(&mixed));
            prop_assert_eq!(pick.count_ones(), 1);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
