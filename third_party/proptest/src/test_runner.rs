//! Deterministic random generator and failure type for the offline
//! proptest stub.

/// Error carried by a failing `prop_assert!` back to the case loop.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// splitmix64 generator, seeded from the property name so every test
/// binary run replays the identical case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a label (the property function name).
    #[must_use]
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, then one splitmix step to spread it.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng { state: h };
        rng.next_u64();
        rng
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Modulo bias is irrelevant at test-strategy scales.
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_labels_distinct_streams() {
        let a = TestRng::deterministic("alpha").next_u64();
        let b = TestRng::deterministic("beta").next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = TestRng::deterministic("floats");
        for _ in 0..1000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
