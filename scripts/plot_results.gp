# Render the reproduction's figure CSVs (written by reproduce_all.sh)
# as PNGs, mirroring the paper's Figures 11-14.
#
#   gnuplot -e "outdir='results'" scripts/plot_results.gp
#
# Requires gnuplot >= 5. Each CSV has a header row: n,<curve>,<curve>,...

if (!exists("outdir")) outdir = "results"

set datafile separator ","
set terminal pngcairo size 900,540 font ",11"
set grid
set key bottom right
set xlabel "matrix size n"
set ylabel "Gflops"

do for [fig in "fig11 fig12 fig13 fig14"] {
    csv = sprintf("%s/%s.csv", outdir, fig)
    png = sprintf("%s/%s.png", outdir, fig)
    set output png
    title_of = fig eq "fig11" ? "Figure 11 — DGEMM, one thread" : \
               fig eq "fig12" ? "Figure 12 — DGEMM, eight threads" : \
               fig eq "fig13" ? "Figure 13 — register rotation effect" : \
                                "Figure 14 — OpenBLAS-8x6 scalability"
    set title title_of
    stats csv skip 1 nooutput
    ncols = STATS_columns
    plot for [i=2:ncols] csv using 1:i skip 1 with linespoints \
         pointsize 0.5 title columnheader(i)
}
