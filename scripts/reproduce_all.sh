#!/usr/bin/env bash
# Regenerate every table/figure of the paper plus the extension studies.
#
#   scripts/reproduce_all.sh [--quick] [outdir]
#
# --quick uses the step-512 size grid (minutes); the default is the
# paper's step-128 grid. Results land in <outdir> (default: results/).

set -euo pipefail
cd "$(dirname "$0")/.."

GRID=""
if [[ "${1:-}" == "--quick" ]]; then
    GRID="--quick"
    shift
fi
OUT="${1:-results}"
mkdir -p "$OUT"

echo "building release binaries..."
cargo build --release -p dgemm-bench --bins

run() {
    local bin="$1"
    shift
    echo "== $bin =="
    cargo run --release -q -p dgemm-bench --bin "$bin" -- "$@" \
        | tee "$OUT/$bin.txt"
    echo
}

# analytic artifacts (instant)
run fig05_gamma_surface
run tab01_rotation
run fig07_schedule
run tab03_blocksizes
run tab04_ldr_fmla

# simulated sweeps
run fig11_serial_sweep $GRID --csv "$OUT/fig11.csv"
run fig12_parallel_sweep $GRID --csv "$OUT/fig12.csv"
run tab05_efficiency $GRID
run fig13_rotation_effect $GRID --csv "$OUT/fig13.csv"
run fig14_scalability $GRID --csv "$OUT/fig14.csv"
run tab06_blocksize_sensitivity $GRID
run fig15_l1_loads $GRID
run tab07_l1_missrate $GRID

# extension studies (Section VI future work + ablations)
run ext_tlb_study
run ext_autotune
run ext_ablation
run ext_model_validation
run ext_sgemm_design
run ext_machine_portability
run ext_fullsim_crosscheck
run ext_kernel_listing

echo "all artifacts written to $OUT/"
