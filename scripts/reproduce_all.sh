#!/usr/bin/env bash
# Regenerate every table/figure of the paper plus the extension studies.
#
#   scripts/reproduce_all.sh [--quick] [outdir]
#
# --quick uses the step-512 size grid (minutes); the default is the
# paper's step-128 grid. Results land in <outdir> (default: results/).

set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast with a clear message if the toolchain is missing, instead of
# dying mid-sweep on a cryptic "command not found".
for tool in cargo tee; do
    if ! command -v "$tool" >/dev/null 2>&1; then
        echo "error: '$tool' not found on PATH." >&2
        if [[ "$tool" == cargo ]]; then
            echo "       Install a Rust toolchain (https://rustup.rs) and retry." >&2
        fi
        exit 1
    fi
done
if ! cargo metadata --no-deps --offline >/dev/null 2>&1; then
    echo "error: 'cargo metadata' failed — run from a checkout of this repository" >&2
    echo "       with its vendored third_party/ crates intact." >&2
    exit 1
fi

GRID=""
if [[ "${1:-}" == "--quick" ]]; then
    GRID="--quick"
    shift
fi
OUT="${1:-results}"
mkdir -p "$OUT"

echo "building release binaries..."
cargo build --release -p dgemm-bench --bins

run() {
    local bin="$1"
    shift
    echo "== $bin =="
    cargo run --release -q -p dgemm-bench --bin "$bin" -- "$@" \
        | tee "$OUT/$bin.txt"
    echo
}

# analytic artifacts (instant)
run fig05_gamma_surface
run tab01_rotation
run fig07_schedule
run tab03_blocksizes
run tab04_ldr_fmla

# simulated sweeps
run fig11_serial_sweep $GRID --csv "$OUT/fig11.csv"
run fig12_parallel_sweep $GRID --csv "$OUT/fig12.csv"
run tab05_efficiency $GRID
run fig13_rotation_effect $GRID --csv "$OUT/fig13.csv"
run fig14_scalability $GRID --csv "$OUT/fig14.csv"
run tab06_blocksize_sensitivity $GRID
run fig15_l1_loads $GRID
run tab07_l1_missrate $GRID

# extension studies (Section VI future work + ablations)
run ext_tlb_study
run ext_autotune
run ext_ablation
run ext_model_validation
run ext_sgemm_design
run ext_machine_portability
run ext_fullsim_crosscheck
run ext_kernel_listing

echo "all artifacts written to $OUT/"
