//! # armv8-dgemm
//!
//! Facade crate for the reproduction of *"Design and Implementation of a
//! Highly Efficient DGEMM for 64-bit ARMv8 Multi-Core Processors"*
//! (Wang, Jiang, Zuo, Su, Xue, Yang — ICPP 2015).
//!
//! The workspace is organized bottom-up, mirroring the paper:
//!
//! - [`perfmodel`] — the Section III performance model and the Section IV
//!   analytic block-size / register-allocation / instruction-scheduling
//!   machinery (equations (1)–(20), Table I, Figures 5 and 7).
//! - [`armsim`] — a parameterized model of the paper's ARMv8 eight-core
//!   platform: A64-subset ISA, issue/latency pipeline, the exact
//!   L1/L2/L3 cache geometry, and the dual-core-module sharing topology.
//! - [`kernels`] — the register-kernel generator that emits the same
//!   unrolled, rotated, scheduled instruction streams the paper writes in
//!   assembly, plus the Table IV micro-benchmark streams.
//! - [`dgemm_core`] — the production, portable Goto-style DGEMM library
//!   (packing, layered blocking, 8×6/8×4/4×4/5×5 microkernels, threading).
//! - [`simgemm`] — the evaluation harness that reruns Section V on the
//!   simulated machine.
//!
//! ## Quickstart
//!
//! ```
//! use armv8_dgemm::prelude::*;
//!
//! let m = 64;
//! let (n, k) = (48, 32);
//! let a = Matrix::from_fn(m, k, |i, j| (i + j) as f64);
//! let b = Matrix::from_fn(k, n, |i, j| (i as f64) - (j as f64));
//! let mut c = Matrix::zeros(m, n);
//! // C := 1.0 * A*B + 0.0 * C, with the paper's 8x6 kernel.
//! dgemm(
//!     Transpose::No,
//!     Transpose::No,
//!     1.0,
//!     &a.view(),
//!     &b.view(),
//!     0.0,
//!     &mut c.view_mut(),
//!     &GemmConfig::default(),
//! )
//! .unwrap();
//! assert!((c.get(0, 0) - (0..32).map(|p| (p as f64) * (-0.0 + p as f64)).sum::<f64>()).abs() < 1e-9);
//! ```

pub use armsim;
pub use dgemm_core;
pub use kernels;
pub use perfmodel;
pub use simgemm;

/// Most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use dgemm_core::blas::dgemm;
    pub use dgemm_core::gemm::GemmConfig;
    pub use dgemm_core::matrix::{Matrix, MatrixView, MatrixViewMut};
    pub use dgemm_core::microkernel::{MicroKernelKind, SgemmKernelKind};
    pub use dgemm_core::sgemm::{sgemm, SgemmConfig};
    pub use dgemm_core::{Parallelism, Transpose};
    pub use perfmodel::cacheblock::{solve_blocking, BlockSizes};
    pub use perfmodel::regblock::{optimize_register_block, RegisterBlockChoice};
}
